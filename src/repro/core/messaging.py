"""Acoustic message service: unsolicited frames, delivered as they land.

The bare :class:`~repro.audio.modem.FskReceiver` is an offline decoder —
you hand it a capture that you already know contains a frame.  A
management station doesn't know when a switch will speak.  This service
closes the gap: it polls the microphone, hunts for preambles, reads the
frame header to learn the payload length, waits out the frame's
airtime, decodes, and delivers the payload to a callback.  Frames can
arrive at any time, back to back, from any speaker using the agreed
modem configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..audio.channel import AcousticChannel
from ..audio.devices import Microphone
from ..audio.modem import FskReceiver, ModemConfig, ModemError
from ..net.sim import PeriodicTimer, Simulator

#: Delivery callback: (payload, frame_start_time).
MessageHandler = Callable[[bytes, float], None]


@dataclass
class ReceivedFrame:
    """One successfully decoded frame."""

    payload: bytes
    preamble_time: float
    decoded_at: float


class AcousticMessageService:
    """Always-on frame reception over one modem configuration.

    Parameters
    ----------
    sim, channel, microphone:
        The listening rig.
    config:
        The shared modem parameters.
    on_message:
        Called with ``(payload, preamble_time)`` per decoded frame.
    poll_interval:
        How often the scanner looks for new preambles.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: AcousticChannel,
        microphone: Microphone,
        config: ModemConfig,
        on_message: MessageHandler | None = None,
        poll_interval: float = 0.25,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.sim = sim
        self.channel = channel
        self.microphone = microphone
        self.config = config
        self.on_message = on_message
        self.poll_interval = poll_interval
        self._receiver = FskReceiver(config)
        #: Scan frontier: audio before this is already consumed.
        self._scan_from = sim.now
        self._decoding = False
        self.frames: list[ReceivedFrame] = []
        self.decode_errors = 0
        self._timer: PeriodicTimer | None = None

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("service already started")
        self._timer = self.sim.every(self.poll_interval, self._poll)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ------------------------------------------------------------------

    def _poll(self) -> None:
        """Look for a fresh preamble past the scan frontier."""
        if self._decoding:
            return
        now = self.sim.now
        if now - self._scan_from < self.config.symbol_duration * 2:
            return
        capture = self.microphone.record(self.channel, self._scan_from, now)
        preamble = self._receiver._find_preamble(capture, self._scan_from)
        if preamble is None:
            # Keep a one-symbol overlap so a preamble straddling the
            # frontier is still found next poll.
            self._scan_from = max(self._scan_from,
                                  now - self.config.symbol_duration * 2)
            return
        self._decoding = True
        # The frame's length byte occupies the symbols right after the
        # preamble; once the longest possible header has elapsed we can
        # read it and schedule the final decode.
        per_byte = 8 // self.config.bits_per_symbol
        header_end = (preamble
                      + (1 + per_byte) * self.config.symbol_period
                      + self.config.symbol_duration)
        self.sim.schedule_at(max(header_end, now), self._read_header,
                             preamble)

    def _read_header(self, preamble: float) -> None:
        capture = self.microphone.record(
            self.channel, preamble, self.sim.now
        )
        length = self._read_length(capture, preamble)
        if length is None:
            self._abandon(preamble)
            return
        frame_end = preamble + self.config.frame_airtime(length) + \
            self.config.symbol_duration
        self.sim.schedule_at(max(frame_end, self.sim.now),
                             self._decode_frame, preamble, frame_end)

    def _read_length(self, capture, preamble: float) -> int | None:
        """Decode just the length byte (first symbols after preamble)."""
        config = self.config
        per_byte = 8 // config.bits_per_symbol
        try:
            symbols = []
            for slot in range(1, 1 + per_byte):
                centre = (preamble + slot * config.symbol_period
                          + config.symbol_duration / 2.0)
                window = capture.slice_time(
                    centre - config.symbol_duration / 2.2 - preamble,
                    centre + config.symbol_duration / 2.2 - preamble,
                )
                events = self._receiver._detector.detect(window)
                events = [e for e in events
                          if e.frequency != config.preamble_frequency]
                if not events:
                    return None
                strongest = max(events, key=lambda e: e.level_db)
                symbols.append(config.frequencies.index(strongest.frequency))
            value = 0
            for symbol in symbols:
                value = (value << config.bits_per_symbol) | symbol
            return value
        except (ValueError, ModemError):
            return None

    def _decode_frame(self, preamble: float, frame_end: float) -> None:
        capture = self.microphone.record(
            self.channel, preamble - self.config.symbol_duration,
            frame_end,
        )
        try:
            payload = self._receiver.decode(
                capture, preamble - self.config.symbol_duration
            )
        except ModemError:
            self.decode_errors += 1
        else:
            frame = ReceivedFrame(payload, preamble, self.sim.now)
            self.frames.append(frame)
            if self.on_message is not None:
                self.on_message(payload, preamble)
        self._scan_from = frame_end
        self._decoding = False

    def _abandon(self, preamble: float) -> None:
        """Unreadable header: skip past the preamble and keep scanning."""
        self.decode_errors += 1
        self._scan_from = preamble + self.config.symbol_period
        self._decoding = False
