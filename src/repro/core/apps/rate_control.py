"""Acoustic in-network congestion control: closing the §6 loop.

"This in turn can be used to drive in-network flow or congestion
control decisions, without waiting for source reactions, without having
to modify the transport protocol, as in DataCenter TCP (DCTCP), and
without using the less efficient Explicit Congestion Notification (ECN)
mechanism of TCP."

:class:`RateControlApp` is that decision-maker.  It listens to a
switch's queue-band chirps (the same 500/600/700 Hz tones as the
monitoring app) and drives a token-bucket policer on the congested
entry:

* hear the **high** tone → install (or tighten) a metered rule capping
  the aggressor traffic below the egress service rate, so the queue
  drains;
* hear the **low** tone for ``release_after`` consecutive chirps →
  remove the meter, restoring full rate.

The data plane is never consulted — the entire control loop rides on
sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.controlplane import FlowMod, FlowModCommand
from ...net.flowtable import Action, Match
from ..controller import MDNController
from .queue_monitor import BandToneMap


@dataclass
class RateControlPolicy:
    """What to install when the watched switch congests.

    Attributes
    ----------
    switch_name:
        Where the meter goes.
    match:
        The traffic aggregate to police.
    forward_port:
        The action the metered entry keeps forwarding to.
    limit_pps:
        Policing rate while congested — set below the egress service
        rate so the queue actually drains.
    priority:
        Entry priority (must beat the unmetered route).
    """

    switch_name: str
    match: Match
    forward_port: int
    limit_pps: float
    priority: int = 100


class RateControlApp:
    """Sound-driven in-network rate limiting."""

    def __init__(
        self,
        controller: MDNController,
        tones: BandToneMap,
        policy: RateControlPolicy,
        release_after: int = 5,
        meter_burst: float = 10.0,
        on_install=None,
        on_release=None,
    ) -> None:
        """``on_install(time)`` / ``on_release(time)`` fire when the
        meter goes in or comes out (for logging, alerting, or sending
        an acoustic report)."""
        if release_after < 1:
            raise ValueError("release_after must be >= 1")
        self.controller = controller
        self.tones = tones
        self.policy = policy
        self.release_after = release_after
        self.meter_burst = meter_burst
        self.on_install = on_install
        self.on_release = on_release
        self.metered = False
        self.installed_at: list[float] = []
        self.released_at: list[float] = []
        self._consecutive_low = 0
        controller.watch(tones.frequencies(), on_detection=self._on_tone)

    def _on_tone(self, event) -> None:
        band = self.tones.band_of(event.frequency)
        if band == "high":
            self._consecutive_low = 0
            if not self.metered:
                self._install(event.time)
        elif band == "low":
            self._consecutive_low += 1
            if self.metered and self._consecutive_low >= self.release_after:
                self._release(event.time)
        else:
            self._consecutive_low = 0

    def _install(self, time: float) -> None:
        self.controller.send_flow_mod(
            self.policy.switch_name,
            FlowMod(
                match=self.policy.match,
                action=Action.forward(self.policy.forward_port),
                priority=self.policy.priority,
                meter_rate_pps=self.policy.limit_pps,
                meter_burst=self.meter_burst,
            ),
        )
        self.metered = True
        self.installed_at.append(time)
        if self.on_install is not None:
            self.on_install(time)

    def _release(self, time: float) -> None:
        self.controller.send_flow_mod(
            self.policy.switch_name,
            FlowMod(
                match=self.policy.match,
                priority=self.policy.priority,
                command=FlowModCommand.DELETE,
                strict=True,  # never touch the base route
            ),
        )
        self.metered = False
        self._consecutive_low = 0
        self.released_at.append(time)
        if self.on_release is not None:
            self.on_release(time)
