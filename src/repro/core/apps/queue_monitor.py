"""Queue chirps: the shared switch-side mechanism of Section 6.

"Every 300 ms, each switch is programmed to send a sound whose
frequency depends on the number of packets currently in the switch's
queue": below 25 packets the lowest tone, between 25 and 75 the middle
tone, above 75 the highest (Figure 5).  The Figure 5c–d monitoring
use case uses exactly 500/600/700 Hz.

:class:`QueueChirper` is the switch half (used by both §6 apps);
:class:`QueueMonitorApp` is the controller half for the monitoring use
case — it tracks each switch's congestion band over time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.queueing import QueueBands
from ...net.switch import Switch
from ...net.stats import TimeSeries
from ..agent import MusicAgent
from ..controller import MDNController

#: The paper's chirp period (§6).
CHIRP_PERIOD = 0.3

#: The Figure 5c–d band frequencies, Hz.
FIG5_BAND_FREQUENCIES = {"low": 500.0, "medium": 600.0, "high": 700.0}


@dataclass(frozen=True)
class BandToneMap:
    """Frequencies assigned to the three queue bands of one switch."""

    low: float
    medium: float
    high: float

    @classmethod
    def from_frequencies(cls, frequencies: tuple[float, ...]) -> "BandToneMap":
        if len(frequencies) < 3:
            raise ValueError("need three frequencies for three bands")
        return cls(frequencies[0], frequencies[1], frequencies[2])

    def frequency_of(self, band: str) -> float:
        return {"low": self.low, "medium": self.medium, "high": self.high}[band]

    def band_of(self, frequency: float) -> str:
        mapping = {self.low: "low", self.medium: "medium", self.high: "high"}
        return mapping[frequency]

    def frequencies(self) -> list[float]:
        return [self.low, self.medium, self.high]

    def moved(self, moves: dict[int, float]) -> "BandToneMap":
        """A copy with band tones replaced by allocation index (0=low,
        1=medium, 2=high) — the spectrum-migration rebind."""
        ordered = [self.low, self.medium, self.high]
        for index, frequency in moves.items():
            ordered[index] = float(frequency)
        return BandToneMap(*ordered)


class QueueChirper:
    """Switch-side half: the 300 ms queue-band chirp timer.

    Parameters
    ----------
    switch:
        The switch whose egress queue is sampled (the tc poll).
    port:
        Which egress port's queue to watch.
    tones:
        The band→frequency map for this switch.
    bands:
        Occupancy thresholds (paper: 25/75).
    always_chirp:
        If False (default), a chirp is only emitted when the band
        *changed* or on every ``refresh_every`` samples, keeping the
        air quiet in steady state.  True reproduces the paper exactly:
        one chirp every period regardless.
    """

    def __init__(
        self,
        sim,
        switch: Switch,
        port: int,
        agent: MusicAgent,
        tones: BandToneMap,
        bands: QueueBands | None = None,
        period: float = CHIRP_PERIOD,
        tone_duration: float = 0.08,
        tone_level_db: float = 70.0,
        always_chirp: bool = True,
        refresh_every: int = 10,
    ) -> None:
        self.switch = switch
        self.port = port
        self.agent = agent
        self.tones = tones
        self.bands = bands or QueueBands()
        self.period = period
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self.always_chirp = always_chirp
        self.refresh_every = refresh_every
        self._last_band: str | None = None
        self._since_refresh = 0
        #: The sampled queue lengths — the Figure 5a/5c series.
        self.queue_series = TimeSeries(f"{switch.name}.queue")
        self._timer = sim.every(period, self._chirp)

    def stop(self) -> None:
        self._timer.stop()

    def retune(self, tones: BandToneMap) -> None:
        """Adopt migrated band tones (spectrum agility PLAN_COMMIT);
        takes effect from the next chirp."""
        self.tones = tones

    def _chirp(self) -> None:
        now = self.switch.sim.now
        length = self.switch.egress_queue(self.port).sample(now)
        self.queue_series.record(now, length)
        band = self.bands.classify(length)
        changed = band != self._last_band
        self._since_refresh += 1
        if not self.always_chirp and not changed:
            if self._since_refresh < self.refresh_every:
                return
        self._since_refresh = 0
        self._last_band = band
        self.agent.play(
            self.tones.frequency_of(band), self.tone_duration, self.tone_level_db
        )


class QueueMonitorApp:
    """Controller-side half of Figure 5c–d: track the congestion band.

    Listens for one switch's three band tones and maintains the
    inferred band over time; "if it hears a frequency it recognizes, it
    knows the range for the number of packets in the queue (and can
    then make a congestion decision based on that)".
    """

    def __init__(
        self,
        controller: MDNController,
        switch_name: str,
        tones: BandToneMap,
    ) -> None:
        self.controller = controller
        self.switch_name = switch_name
        self.tones = tones
        self.current_band: str | None = None
        #: (time, band) transitions as heard.
        self.band_history: list[tuple[float, str]] = []
        controller.watch(tones.frequencies(), on_detection=self._on_tone)

    def rebind(self, tones: BandToneMap) -> None:
        """Adopt migrated band tones.  The controller re-attributes
        tones heard on pre-migration frequencies during the handover
        (``migrate_watch`` aliases), so this app only ever sees
        current-plan frequencies and just swaps its map."""
        self.tones = tones

    def _on_tone(self, event) -> None:
        band = self.tones.band_of(event.frequency)
        if band != self.current_band:
            self.current_band = band
            self.band_history.append((event.time, band))

    @property
    def is_congested(self) -> bool:
        return self.current_band == "high"

    def band_at(self, time: float) -> str | None:
        """The band the controller believed at a given time."""
        band = None
        for when, value in self.band_history:
            if when <= time:
                band = value
            else:
                break
        return band
