"""Ground-truth scoring for workload-driven detector runs.

The workload layer (:mod:`repro.net.workload`) knows which flows are
*truly* elephants and which packets belong to a scan campaign — the
``labels`` column of the :class:`~repro.net.flowpop.FlowPopulation`.
This module turns detector output plus those labels into
precision/recall, at two granularities that match how each app
actually decides:

* **heavy hitter** — bucket-level: the detector alerts on hash
  buckets, so truth is "buckets containing at least one elephant" and
  a collision-induced alert on a mouse-only bucket is a false
  positive, exactly as in any sketch.
* **port scan** — interval-level: the detector alerts on measurement
  intervals, so truth is "intervals in which scan-labeled packets
  covered more than a threshold of distinct monitored ports".

Both scores can be swept over the decision threshold *post hoc* from
the app's closed interval histograms — no re-run per curve point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...net.flowpop import LABEL_ELEPHANT, LABEL_SCAN, FlowPopulation
from ..frequency_plan import Allocation
from .heavy_hitter import HeavyHitterDetectorApp
from .port_scan import PortScanDetectorApp


@dataclass(frozen=True)
class PrecisionRecall:
    """One detector operating point against ground truth."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @classmethod
    def from_sets(cls, predicted: set, truth: set) -> "PrecisionRecall":
        """Score a predicted set against a truth set.

        Conventions: with no predictions precision is 1.0 (nothing
        claimed, nothing wrong); with no truth recall is 1.0 (nothing
        to find, nothing missed).
        """
        tp = len(predicted & truth)
        fp = len(predicted - truth)
        fn = len(truth - predicted)
        precision = tp / (tp + fp) if (tp + fp) else 1.0
        recall = tp / (tp + fn) if (tp + fn) else 1.0
        return cls(precision, recall, tp, fp, fn)

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return (2 * self.precision * self.recall
                / (self.precision + self.recall))

    def as_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
        }


# ----------------------------------------------------------------------
# Heavy hitter: bucket-level truth
# ----------------------------------------------------------------------


def heavy_hitter_truth_buckets(
    population: FlowPopulation, num_buckets: int
) -> set[int]:
    """Buckets containing at least one ground-truth elephant."""
    elephants = population.indices_with_label(LABEL_ELEPHANT)
    static = elephants[population.static[elephants]]
    buckets = population.stable_hashes[static] % np.uint64(num_buckets)
    return set(buckets.astype(np.int64).tolist())


def heavy_hitter_predicted_buckets(
    app: HeavyHitterDetectorApp, threshold: int | None = None
) -> set[int]:
    """Buckets the detector would flag at ``threshold`` (default: the
    app's configured threshold — i.e. its actual alerts)."""
    allocation: Allocation = app.mapper.allocation
    if threshold is None or threshold == app.count_threshold:
        return {
            allocation.index_of(alert.frequency) for alert in app.alerts
        }
    predicted: set[int] = set()
    for interval in app.counter.closed:
        for frequency, count in interval.counts.items():
            if count > threshold:
                predicted.add(allocation.index_of(frequency))
    return predicted


def score_heavy_hitter(
    app: HeavyHitterDetectorApp, population: FlowPopulation
) -> PrecisionRecall:
    """The app's alerts vs the population's elephant buckets."""
    truth = heavy_hitter_truth_buckets(population, len(app.mapper.allocation))
    return PrecisionRecall.from_sets(
        heavy_hitter_predicted_buckets(app), truth
    )


def heavy_hitter_curve(
    app: HeavyHitterDetectorApp,
    population: FlowPopulation,
    thresholds: list[int],
) -> list[tuple[int, PrecisionRecall]]:
    """Threshold-swept precision/recall, post hoc from closed
    intervals (the run is not repeated per point)."""
    truth = heavy_hitter_truth_buckets(population, len(app.mapper.allocation))
    return [
        (threshold, PrecisionRecall.from_sets(
            heavy_hitter_predicted_buckets(app, threshold), truth))
        for threshold in thresholds
    ]


# ----------------------------------------------------------------------
# Port scan: interval-level truth
# ----------------------------------------------------------------------


def scan_truth_intervals(
    population: FlowPopulation,
    port_range: range,
    interval: float,
    duration: float,
    min_distinct_ports: int = 5,
) -> set[float]:
    """Interval starts in which scan-labeled packets probed more than
    ``min_distinct_ports`` distinct monitored ports — computed from the
    population's closed-form departure schedule, not from any detector."""
    scan_rows = set(population.indices_with_label(LABEL_SCAN).tolist())
    if not scan_rows:
        return set()
    times, flow_idx, ks = population.departures_between(0.0, duration)
    is_scan = np.isin(flow_idx, list(scan_rows))
    if not is_scan.any():
        return set()
    times, flow_idx, ks = times[is_scan], flow_idx[is_scan], ks[is_scan]
    ports = population.dst_ports_for(flow_idx, ks)
    monitored = (ports >= port_range.start) & (ports < port_range.stop)
    if not monitored.any():
        return set()
    slots = np.floor_divide(times[monitored], interval).astype(np.int64)
    span = np.int64(len(port_range))
    packed = np.unique(slots * span + (ports[monitored] - port_range.start))
    per_slot = np.bincount((packed // span).astype(np.int64))
    hot = np.nonzero(per_slot > min_distinct_ports)[0]
    return {float(slot) * interval for slot in hot.tolist()}


def port_scan_predicted_intervals(
    app: PortScanDetectorApp, threshold: int | None = None
) -> set[float]:
    """Interval starts the detector would flag at ``threshold``."""
    if threshold is None or threshold == app.distinct_threshold:
        return {alert.interval_start for alert in app.alerts}
    return {
        interval.start for interval in app.counter.closed
        if interval.distinct > threshold
    }


def score_port_scan(
    app: PortScanDetectorApp,
    population: FlowPopulation,
    port_range: range,
    duration: float,
) -> PrecisionRecall:
    """The app's alerts vs scan-campaign truth intervals (truth uses
    the app's own threshold as the coverage bar)."""
    truth = scan_truth_intervals(
        population, port_range, app.interval, duration,
        min_distinct_ports=app.distinct_threshold,
    )
    return PrecisionRecall.from_sets(
        port_scan_predicted_intervals(app), truth
    )


def port_scan_curve(
    app: PortScanDetectorApp,
    population: FlowPopulation,
    port_range: range,
    duration: float,
    thresholds: list[int],
) -> list[tuple[int, PrecisionRecall]]:
    """Threshold-swept precision/recall with truth held fixed at the
    app's configured coverage bar."""
    truth = scan_truth_intervals(
        population, port_range, app.interval, duration,
        min_distinct_ports=app.distinct_threshold,
    )
    return [
        (threshold, PrecisionRecall.from_sets(
            port_scan_predicted_intervals(app, threshold), truth))
        for threshold in thresholds
    ]
