"""Port knocking over sound: the Section 4 state-processing use case.

The switch starts *closed*: its default action drops everything.  A
sender "knocks" by causing the switch to emit three tones — each tone's
frequency encodes a destination port number — and the MDN controller
runs a finite state machine over the tone sequence.  When the three
knocks arrive in the correct order, the controller installs a flow
entry opening the protected port ("an incoming packet with port x is
associated to a forwarding action when the port is open, but to a drop
action when the system is in any other state").

Wiring: the switch emits a knock tone whenever it receives a packet for
one of the knock ports (even though it drops the packet — the paper's
switches signal on *received* traffic, which is precisely what makes
this an authentication channel: the data path is closed, the sound
path is not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...net.controlplane import FlowMod
from ...net.flowtable import Action, Match
from ...net.packet import Packet
from ...net.switch import Switch
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import Allocation
from ..fsm import StateMachine, sequence_machine


@dataclass
class KnockConfig:
    """The shared secret: which ports, in which order, open what.

    Attributes
    ----------
    knock_ports:
        The secret sequence of destination ports (the paper uses 3).
    protected_port:
        The port opened on success.
    allocation:
        The switch's frequency block; knock port ``i``'s tone is
        ``allocation.frequency_for(i)`` and the mapping is known to
        both sides ("in the controller, we know what frequencies are
        associated with each port for a switch").
    tone_duration, tone_level_db:
        The knock tone parameters.
    """

    knock_ports: list[int]
    protected_port: int
    allocation: Allocation
    tone_duration: float = 0.15
    tone_level_db: float = 70.0

    def __post_init__(self) -> None:
        if len(self.knock_ports) < 1:
            raise ValueError("need at least one knock port")
        if len(set(self.knock_ports)) != len(self.knock_ports):
            raise ValueError("knock ports must be distinct")
        if self.protected_port in self.knock_ports:
            raise ValueError("protected port must not be a knock port")
        if len(self.allocation) < len(self.knock_ports):
            raise ValueError(
                f"allocation has {len(self.allocation)} frequencies, "
                f"need {len(self.knock_ports)}"
            )

    def frequency_of(self, port: int) -> float:
        """The tone frequency assigned to a knock port."""
        return self.allocation.frequency_for(self.knock_ports.index(port))

    def port_of(self, frequency: float) -> int:
        """Inverse mapping used by the listening side."""
        return self.knock_ports[self.allocation.index_of(frequency)]

    def rebind(self, allocation: Allocation) -> None:
        """Adopt a migrated allocation (spectrum agility PLAN_COMMIT).
        The config is the shared secret's single source of truth, so
        rebinding it retunes both the emitter and the listener."""
        if len(allocation) < len(self.knock_ports):
            raise ValueError(
                f"migrated allocation has {len(allocation)} frequencies, "
                f"need {len(self.knock_ports)}"
            )
        self.allocation = allocation


class KnockEmitter:
    """Switch-side half: turns knock-port packets into tones.

    Attach to the closed switch; packets to the knock ports still get
    dropped by the flow table, but each one triggers an MP message.
    A refractory period prevents a packet burst from emitting a tone
    storm (the speaker is half-duplex anyway).
    """

    def __init__(
        self,
        switch: Switch,
        agent: MusicAgent,
        config: KnockConfig,
        refractory: float = 0.3,
    ) -> None:
        self.switch = switch
        self.agent = agent
        self.config = config
        self.refractory = refractory
        self._last_emission: dict[int, float] = {}
        switch.on_receive(self._on_packet)

    def _on_packet(self, packet: Packet, in_port: int) -> None:
        port = packet.flow.dst_port
        if port not in self.config.knock_ports:
            return
        now = self.switch.sim.now
        last = self._last_emission.get(port)
        if last is not None and now - last < self.refractory:
            return
        self._last_emission[port] = now
        self.agent.play(
            self.config.frequency_of(port),
            self.config.tone_duration,
            self.config.tone_level_db,
        )


class PortKnockingApp:
    """Controller-side half: the FSM and the Flow-MOD on acceptance."""

    def __init__(
        self,
        controller: MDNController,
        switch_name: str,
        dst_ip: str,
        config: KnockConfig,
    ) -> None:
        self.controller = controller
        self.switch_name = switch_name
        self.dst_ip = dst_ip
        self.config = config
        self.machine: StateMachine = sequence_machine(list(config.knock_ports))
        self.opened_at: float | None = None
        self.knock_log: list[tuple[float, int]] = []
        frequencies = [config.frequency_of(port) for port in config.knock_ports]
        controller.watch(frequencies, on_onset=self._on_tone)

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def _on_tone(self, event) -> None:
        if self.is_open:
            return
        port = self.config.port_of(event.frequency)
        self.knock_log.append((event.time, port))
        self.machine.feed(port)
        if self.machine.accepted:
            self._open(event.time)

    def _open(self, time: float) -> None:
        self.opened_at = time
        self.controller.send_flow_mod(
            self.switch_name,
            FlowMod(
                match=Match(
                    dst_ip=self.dst_ip, dst_port=self.config.protected_port
                ),
                action=Action.forward(self._port_to_destination()),
                priority=100,
            ),
        )

    def _port_to_destination(self) -> int:
        """Resolved lazily by the experiment wiring; stored here."""
        if not hasattr(self, "_out_port"):
            raise RuntimeError(
                "set_output_port() must be called before the knock completes"
            )
        return self._out_port

    def set_output_port(self, out_port: int) -> None:
        """Tell the app which switch port leads to the protected host."""
        self._out_port = out_port
