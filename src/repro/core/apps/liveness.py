"""Acoustic liveness monitoring: hearing that a device is still there.

Section 1 lists "simple device booting, restart or configuration" and
diagnostics among the management tasks an out-of-band channel should
carry, and §7's UPS anecdote shows why knowing a box's true power state
matters.  This app is the *active* counterpart of the fan watchdog:
each monitored device chirps a per-device heartbeat tone on a fixed
period; the controller tracks arrivals and raises an alert when a
device misses ``miss_threshold`` consecutive beats — a crash, power
loss or speaker failure, detected with zero packets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.sim import PeriodicTimer, Simulator
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import FrequencyPlan


class HeartbeatChirper:
    """Device-side half: one tone every ``period`` seconds."""

    def __init__(
        self,
        sim: Simulator,
        agent: MusicAgent,
        frequency: float,
        period: float = 1.0,
        tone_duration: float = 0.08,
        tone_level_db: float = 68.0,
        phase: float = 0.0,
    ) -> None:
        """``phase`` offsets the first beat within the period; a mesh
        staggers its devices' phases so beats do not all land in one
        capture window (short simultaneous tones at tight spacing merge
        spectrally — see DESIGN.md §5 on envelopes)."""
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= phase < period:
            raise ValueError(f"phase must be in [0, period), got {phase}")
        self.sim = sim
        self.agent = agent
        self.frequency = frequency
        self.period = period
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self.alive = True
        self.beats_emitted = 0
        self._timer: PeriodicTimer = sim.every(
            period, self._beat, start=sim.now + period / 2 + phase
        )

    def _beat(self) -> None:
        if not self.alive:
            return
        self.beats_emitted += 1
        self.agent.play(self.frequency, self.tone_duration,
                        self.tone_level_db)

    def kill(self) -> None:
        """The device dies: no more chirps (the failure under test)."""
        self.alive = False

    def revive(self) -> None:
        self.alive = True

    def stop(self) -> None:
        self._timer.stop()


@dataclass(frozen=True)
class LivenessAlert:
    """A monitored device declared down."""

    device: str
    time: float
    last_heard: float
    missed_beats: int


class LivenessMonitorApp:
    """Controller-side half: per-device beat tracking.

    Parameters
    ----------
    devices:
        ``{device_name: heartbeat_frequency}``.
    period:
        The agreed heartbeat period.
    miss_threshold:
        Consecutive missed beats before the device is declared down
        (2 tolerates one lost window; the paper's channel is lossy air).
    """

    def __init__(
        self,
        controller: MDNController,
        devices: dict[str, float],
        period: float = 1.0,
        miss_threshold: int = 2,
    ) -> None:
        if not devices:
            raise ValueError("need at least one device")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.controller = controller
        self.devices = dict(devices)
        self.period = period
        self.miss_threshold = miss_threshold
        self._frequency_to_device = {
            frequency: name for name, frequency in devices.items()
        }
        if len(self._frequency_to_device) != len(devices):
            raise ValueError("device frequencies must be unique")
        self.last_heard: dict[str, float] = {}
        self.down: dict[str, LivenessAlert] = {}
        self.alerts: list[LivenessAlert] = []
        # The chirper emits on a PeriodicTimer's absolute grid, so the
        # monitor anchors its deadline to that grid too: the first
        # heard beat fixes the origin, and every later beat snaps to
        # the nearest slot.  Detection jitter (a beat surfacing a
        # window late) must not slide the miss deadline.
        self._origin: dict[str, float] = {}
        self._last_slot: dict[str, int] = {}
        controller.watch(list(devices.values()), on_onset=self._on_beat)
        controller.on_window(self._on_window)

    def _on_beat(self, event) -> None:
        device = self._frequency_to_device[event.frequency]
        self.last_heard[device] = event.time
        origin = self._origin.get(device)
        if origin is None:
            self._origin[device] = event.time
            self._last_slot[device] = 0
        else:
            slot = round((event.time - origin) / self.period)
            if slot > self._last_slot[device]:
                self._last_slot[device] = slot
        if device in self.down:
            # Device came back: clear the down state (the alert stays
            # in the history).
            del self.down[device]

    def _reference(self, device: str) -> float:
        """Grid-snapped time of the last beat credited to ``device``
        (grace window before the first beat is ever heard)."""
        origin = self._origin.get(device)
        if origin is None:
            return -self.period / 2
        return origin + self._last_slot[device] * self.period

    def _on_window(self, events, time: float) -> None:
        deadline = self.period * self.miss_threshold + self.period / 2
        for device in sorted(self.devices):
            if device in self.down:
                continue
            reference = self._reference(device)
            silence = time - reference
            if silence > deadline:
                missed = int(silence / self.period)
                alert = LivenessAlert(device, time, reference, missed)
                self.down[device] = alert
                self.alerts.append(alert)

    def is_down(self, device: str) -> bool:
        return device in self.down

    def devices_down(self) -> list[str]:
        return sorted(self.down)


def build_liveness_mesh(
    controller: MDNController,
    agents: dict[str, MusicAgent],
    plan: FrequencyPlan,
    period: float = 1.0,
    miss_threshold: int = 2,
) -> tuple[dict[str, HeartbeatChirper], LivenessMonitorApp]:
    """Give every agent a heartbeat frequency and wire the monitor.

    Returns ``(chirpers_by_device, monitor)``.  Call before
    ``controller.start()``.
    """
    devices: dict[str, float] = {}
    chirpers: dict[str, HeartbeatChirper] = {}
    names = sorted(agents)
    for index, name in enumerate(names):
        # Two-slot blocks double the effective spacing: short heartbeat
        # tones need more than the plan's base guard to coexist.
        allocation = plan.allocate(f"liveness/{name}", 2)
        frequency = allocation.frequency_for(0)
        devices[name] = frequency
        chirpers[name] = HeartbeatChirper(
            controller.sim, agents[name], frequency, period,
            phase=(index * period) / max(len(names), 1) % period,
        )
    monitor = LivenessMonitorApp(controller, devices, period, miss_threshold)
    return chirpers, monitor
