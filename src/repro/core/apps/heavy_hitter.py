"""Heavy-hitter detection by ear: Section 5, Figure 4a–b.

Switch side: "we hash a flow tuple defined by source port, destination
port, source IP, destination IP and protocol type and map it to a given
frequency" — each forwarded packet triggers a tone for its flow's
bucket (rate-limited per bucket; the speaker could not keep up with
per-packet tones at line rate, and the detector only needs *counts per
interval*).

Controller side: "recognize when a sound with a similar frequency is
played more than a threshold in a given time interval".
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.packet import FlowKey, Packet
from ...net.switch import Switch
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import Allocation
from ..telemetry import ToneCounter


class FlowToneMapper:
    """The shared flow→frequency mapping.

    ``frequency = allocation[stable_hash(flow) % len(allocation)]``.
    Both halves hold the same allocation, so a heard tone identifies a
    hash bucket (collisions are possible, exactly as in any sketch).
    """

    def __init__(self, allocation: Allocation) -> None:
        if len(allocation) < 1:
            raise ValueError("allocation must hold at least one frequency")
        self.allocation = allocation

    def bucket_of(self, flow: FlowKey) -> int:
        """The hash bucket a flow sounds from.  Stable across a
        :meth:`rebind` — buckets name sketch slots, not tones."""
        return flow.stable_hash() % len(self.allocation)

    def frequency_of(self, flow: FlowKey) -> float:
        return self.allocation.frequency_for(self.bucket_of(flow))

    def rebind(self, allocation: Allocation) -> None:
        """Adopt a migrated allocation (spectrum agility PLAN_COMMIT):
        same bucket count, same symbol order, new tones.  Both halves
        share one mapper, so a single rebind retunes the whole app."""
        if len(allocation) != len(self.allocation):
            raise ValueError(
                f"migrated allocation holds {len(allocation)} frequencies, "
                f"expected {len(self.allocation)} (bucket map would shift)"
            )
        self.allocation = allocation


class HeavyHitterEmitter:
    """Switch-side half: one tone per flow bucket per emission period.

    Parameters
    ----------
    emission_period:
        Minimum spacing between tones of the same bucket.  With the
        default 100 ms, a bucket can sound at most 10 times per second
        — a flow pushing continuously rings its bucket every period,
        while a mouse flow rings it only when it actually sends.
    """

    def __init__(
        self,
        switch: Switch,
        agent: MusicAgent,
        mapper: FlowToneMapper,
        emission_period: float = 0.1,
        tone_duration: float = 0.05,
        tone_level_db: float = 70.0,
    ) -> None:
        if emission_period <= 0:
            raise ValueError("emission_period must be positive")
        self.switch = switch
        self.agent = agent
        self.mapper = mapper
        self.emission_period = emission_period
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        #: Per-bucket rate-limit state, keyed by bucket *index* — never
        #: by frequency.  A spectrum-agility ``FlowToneMapper.rebind``
        #: retunes every bucket to a new tone; frequency keys would
        #: orphan all the old entries (unbounded growth across
        #: migrations) and reset every bucket's limiter at commit,
        #: releasing a synchronized tone burst into the new slots.
        self._last_emission: dict[int, float] = {}
        self.tones_requested = 0
        switch.on_forward(self._on_forward)

    def _on_forward(self, packet: Packet, in_port: int, out_port: int) -> None:
        bucket = self.mapper.bucket_of(packet.flow)
        now = self.switch.sim.now
        last = self._last_emission.get(bucket)
        if last is not None and now - last < self.emission_period:
            return
        self._last_emission[bucket] = now
        self.tones_requested += 1
        self.agent.play(self.mapper.allocation.frequency_for(bucket),
                        self.tone_duration, self.tone_level_db)


@dataclass(frozen=True)
class HeavyHitterAlert:
    """A bucket flagged as heavy in one interval."""

    interval_start: float
    frequency: float
    count: int


class HeavyHitterDetectorApp:
    """Controller-side half: per-interval tone counts + threshold rule.

    Parameters
    ----------
    interval:
        Measurement interval, seconds.
    count_threshold:
        A bucket heard in strictly more than this many capture windows
        per interval is declared heavy.  Counting *windows of presence*
        (not onsets) matches the paper's rule — "a sound with a similar
        frequency is played more than a threshold in a given time
        interval" — and is robust to back-to-back tones merging: a
        saturating flow keeps its bucket ringing in ~every window
        (~10/s at the default 100 ms listen interval), while a mouse
        flow's occasional tone covers only one or two windows.
    """

    def __init__(
        self,
        controller: MDNController,
        mapper: FlowToneMapper,
        interval: float = 1.0,
        count_threshold: int = 5,
    ) -> None:
        self.controller = controller
        self.mapper = mapper
        self.interval = interval
        self.count_threshold = count_threshold
        self.counter = ToneCounter(interval)
        self.alerts: list[HeavyHitterAlert] = []
        #: Scan cursor over ``counter.closed``: every closed interval
        #: is inspected exactly once, keeping ``_scan_closed`` O(new
        #: intervals) per window instead of O(total run length) — the
        #: full rescan (plus its ever-growing dedup set) was quadratic
        #: over the run and fatal under million-flow workloads.
        self._scan_cursor = 0
        frequencies = list(mapper.allocation.frequencies)
        controller.watch(frequencies, on_detection=self.counter.observe)
        controller.on_window(self._on_window)

    def _on_window(self, events, time: float) -> None:
        # Rolling the counter forward on every window closes intervals
        # even when no tones arrive.
        self.counter.flush(time)
        self._scan_closed()

    def finalize(self, now: float) -> None:
        """Close the trailing partial interval and apply the rule to it
        — call once when the run ends, or onsets from the final
        sub-interval are silently dropped."""
        self.counter.flush(now, close_partial=True)
        self._scan_closed()

    def _scan_closed(self) -> None:
        closed = self.counter.closed
        for interval in closed[self._scan_cursor:]:
            for frequency, count in sorted(interval.counts.items()):
                if count > self.count_threshold:
                    self.alerts.append(
                        HeavyHitterAlert(interval.start, frequency, count)
                    )
        self._scan_cursor = len(closed)

    def heavy_frequencies(self) -> set[float]:
        """All buckets ever flagged heavy."""
        return {alert.frequency for alert in self.alerts}

    def is_flow_heavy(self, flow: FlowKey) -> bool:
        """Was this flow's bucket flagged? (Subject to hash collisions,
        like any sketch-based detector.)"""
        return self.mapper.frequency_of(flow) in self.heavy_frequencies()
