"""Port-scan detection by ear: Section 5, Figure 4c–d.

Switch side: "when hit by a packet, the switch plays a sound whose
frequency is based on the destination port number."  The mapping is
linear over a monitored port range, so a sequential scan sweeps the
band upward — "the port scan can be identified by a clear logarithmic
line on the Mel-scaled spectrogram" (log only because of the mel axis).

Controller side: counting *distinct* frequencies per interval.  Normal
traffic touches a handful of service ports; a scan touches many ports
in quick succession, so the distinct count explodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.packet import Packet
from ...net.switch import Switch
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import Allocation
from ..telemetry import IntervalCounts, ToneCounter


class PortToneMapper:
    """Linear port→frequency mapping over a monitored range.

    Port ``port_range[i]`` sounds at ``allocation.frequency_for(i)``.
    Ports outside the range are silent (unmonitored).
    """

    def __init__(self, allocation: Allocation, port_range: range) -> None:
        if len(port_range) == 0:
            raise ValueError("port_range must not be empty")
        if len(allocation) < len(port_range):
            raise ValueError(
                f"allocation has {len(allocation)} frequencies for "
                f"{len(port_range)} ports"
            )
        self.allocation = allocation
        self.port_range = port_range

    def frequency_of(self, port: int) -> float | None:
        """The tone for a destination port (None if unmonitored)."""
        if port not in self.port_range:
            return None
        return self.allocation.frequency_for(self.port_range.index(port))

    def port_of(self, frequency: float) -> int:
        return self.port_range[self.allocation.index_of(frequency)]

    def monitored_frequencies(self) -> list[float]:
        return [
            self.allocation.frequency_for(index)
            for index in range(len(self.port_range))
        ]


class PortScanEmitter:
    """Switch-side half: a tone per packet, keyed by destination port."""

    def __init__(
        self,
        switch: Switch,
        agent: MusicAgent,
        mapper: PortToneMapper,
        refractory: float = 0.04,
        tone_duration: float = 0.04,
        tone_level_db: float = 70.0,
    ) -> None:
        self.switch = switch
        self.agent = agent
        self.mapper = mapper
        self.refractory = refractory
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self._last_emission: dict[float, float] = {}
        switch.on_receive(self._on_packet)

    def _on_packet(self, packet: Packet, in_port: int) -> None:
        frequency = self.mapper.frequency_of(packet.flow.dst_port)
        if frequency is None:
            return
        now = self.switch.sim.now
        last = self._last_emission.get(frequency)
        if last is not None and now - last < self.refractory:
            return
        self._last_emission[frequency] = now
        self.agent.play(frequency, self.tone_duration, self.tone_level_db)


@dataclass(frozen=True)
class ScanAlert:
    """An interval whose distinct-port fan-out crossed the threshold."""

    interval_start: float
    distinct_ports: int


class PortScanDetectorApp:
    """Controller-side half: distinct-frequency counting per interval.

    Parameters
    ----------
    interval:
        Measurement interval, seconds.
    distinct_threshold:
        More than this many distinct monitored ports heard within one
        interval raises a :class:`ScanAlert`.  Benign traffic to a few
        services stays far below it.
    """

    def __init__(
        self,
        controller: MDNController,
        mapper: PortToneMapper,
        interval: float = 1.0,
        distinct_threshold: int = 5,
    ) -> None:
        self.controller = controller
        self.mapper = mapper
        self.interval = interval
        self.distinct_threshold = distinct_threshold
        self.counter = ToneCounter(interval)
        self.alerts: list[ScanAlert] = []
        #: Scan cursor over ``counter.closed`` — each closed interval
        #: is judged exactly once, so the per-window cost is O(new
        #: intervals), not O(run length) (the previous full rescan via
        #: ``intervals_with_distinct_over`` plus an unbounded dedup set
        #: was quadratic over the run).
        self._scan_cursor = 0
        controller.watch(
            mapper.monitored_frequencies(), on_onset=self.counter.observe
        )
        controller.on_window(self._on_window)

    def _on_window(self, events, time: float) -> None:
        self.counter.flush(time)
        self._scan_closed()

    def finalize(self, now: float) -> None:
        """Close the trailing partial interval and apply the rule to it
        — call once when the run ends, or a scan burst inside the final
        sub-interval is silently dropped."""
        self.counter.flush(now, close_partial=True)
        self._scan_closed()

    def _scan_closed(self) -> None:
        closed = self.counter.closed
        for interval in closed[self._scan_cursor:]:
            if interval.distinct > self.distinct_threshold:
                self.alerts.append(ScanAlert(interval.start, interval.distinct))
        self._scan_cursor = len(closed)

    @property
    def scan_detected(self) -> bool:
        return bool(self.alerts)

    def ports_heard(self) -> list[int]:
        """Every monitored port heard at least once, ordered by the
        interval it first appeared in (ties broken by port number) —
        for an ascending sequential scan this reproduces the sweep."""
        seen: list[int] = []
        intervals: list[IntervalCounts] = self.counter.closed
        for interval in intervals:
            for frequency in sorted(interval.counts):
                port = self.mapper.port_of(frequency)
                if port not in seen:
                    seen.append(port)
        return seen
