"""Authenticated chirps: defending against tone spoofing.

Section 2 surveys "acoustic insecurity" — sounds injected to "trigger
unexpected and unwanted behavior".  MDN's control tones are exactly
such a surface: anyone with a speaker can play a switch's congestion
tone and make the controller install a Flow-MOD (demonstrated in
``tests/integration/test_tone_spoofing.py``).

The defense here is a **rolling code**: every chirp is a two-tone
chord — the band tone plus a *code tone* drawn from the switch's code
block by a keyed pseudo-random sequence both ends share.  An attacker
who can replay yesterday's chord, or who knows the band tones, still
cannot predict which code tone validates the *next* chirp; the
controller rejects band tones arriving without the expected code.

The code advances once per accepted chirp (with a small look-ahead
window to ride out lost chirps), so replaying a captured chord fails
as soon as the legitimate switch has chirped again.

**Security level**: a blind guess validates with probability
``lookahead / len(code_block)`` per attempt (the code tone is one of
``len(code_block)`` frequencies and any of ``lookahead`` counter
positions is accepted).  A 16-tone block at lookahead 2 gives 1/8 per
attempt — proportionate for a rate-limited physical channel where each
attempt costs ~100 ms of audible tone; deployments wanting more bits
per chirp can run two code agents (a three-tone chord squares the
space).
"""

from __future__ import annotations

import hashlib

from ...net.queueing import QueueBands
from ...net.stats import TimeSeries
from ...net.switch import Switch
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import Allocation
from .queue_monitor import BandToneMap, CHIRP_PERIOD


def _code_index(key: bytes, counter: int, band: str, size: int) -> int:
    digest = hashlib.blake2b(
        key + counter.to_bytes(8, "big") + band.encode(), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big") % size


class RollingCode:
    """A keyed code-tone sequence over an allocation block.

    The code tone is a MAC over ``(key, counter, band)``: it
    authenticates not just "a chirp happened" but *which band value*
    was chirped — so an attacker cannot splice their own band tone onto
    a legitimate code tone caught in the same capture window.
    """

    def __init__(self, key: bytes, code_block: Allocation) -> None:
        if len(code_block) < 2:
            raise ValueError("code block needs at least 2 frequencies")
        if not key:
            raise ValueError("key must not be empty")
        self.key = key
        self.code_block = code_block
        self.counter = 0

    def current_frequency(self, band: str, offset: int = 0) -> float:
        """The code tone authenticating ``band`` at the current (or a
        look-ahead) counter."""
        index = _code_index(self.key, self.counter + offset, band,
                            len(self.code_block))
        return self.code_block.frequency_for(index)

    def advance(self, steps: int = 1) -> None:
        self.counter += steps


class SecureQueueChirper:
    """Switch-side half: every chirp is (band tone, code tone).

    Needs two speakers (a chord), like the superspreader emitter.
    """

    def __init__(
        self,
        sim,
        switch: Switch,
        port: int,
        band_agent: MusicAgent,
        code_agent: MusicAgent,
        tones: BandToneMap,
        code: RollingCode,
        bands: QueueBands | None = None,
        period: float = CHIRP_PERIOD,
        tone_duration: float = 0.08,
        tone_level_db: float = 70.0,
    ) -> None:
        if band_agent is code_agent:
            raise ValueError("the chord needs two independent speakers")
        self.switch = switch
        self.port = port
        self.band_agent = band_agent
        self.code_agent = code_agent
        self.tones = tones
        self.code = code
        self.bands = bands or QueueBands()
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self.queue_series = TimeSeries(f"{switch.name}.queue")
        self._timer = sim.every(period, self._chirp)

    def stop(self) -> None:
        self._timer.stop()

    def _chirp(self) -> None:
        now = self.switch.sim.now
        length = self.switch.egress_queue(self.port).sample(now)
        self.queue_series.record(now, length)
        band = self.bands.classify(length)
        played_band = self.band_agent.play(
            self.tones.frequency_of(band), self.tone_duration,
            self.tone_level_db,
        )
        played_code = self.code_agent.play(
            self.code.current_frequency(band), self.tone_duration,
            self.tone_level_db,
        )
        if played_band and played_code:
            self.code.advance()


class SecureQueueMonitorApp:
    """Controller-side half: band tones only count when chaperoned by
    the expected code tone in the same capture window.

    Parameters
    ----------
    code:
        The shared rolling code (same key + block as the switch's).
    lookahead:
        How many future code positions are acceptable, to resynchronize
        after lost chirps.
    resync_after:
        After this many consecutive rejections, assume the counter has
        drifted past the lookahead (a burst of lost chirps) and scan
        ``resync_scan`` positions ahead once to re-lock.  The wider
        window momentarily raises the guess probability — which is why
        it only opens after a sustained outage, and snaps shut on the
        first accepted chirp.
    """

    def __init__(
        self,
        controller: MDNController,
        switch_name: str,
        tones: BandToneMap,
        code: RollingCode,
        lookahead: int = 2,
        resync_after: int = 5,
        resync_scan: int = 64,
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if resync_after < 1 or resync_scan < lookahead:
            raise ValueError("invalid resync parameters")
        self.controller = controller
        self.switch_name = switch_name
        self.tones = tones
        self.code = code
        self.lookahead = lookahead
        self.resync_after = resync_after
        self.resync_scan = resync_scan
        self.current_band: str | None = None
        self.band_history: list[tuple[float, str]] = []
        self.rejected_spoofs = 0
        self.resyncs = 0
        self._rejection_streak = 0
        watched = sorted(
            set(tones.frequencies()) | set(code.code_block.frequencies)
        )
        controller.watch(watched, on_detection=lambda event: None)
        controller.on_window(self._on_window)

    def _on_window(self, events, time: float) -> None:
        band_events = [event for event in events
                       if event.frequency in self.tones.frequencies()]
        if not band_events:
            return
        code_frequencies = {
            event.frequency for event in events
            if event.frequency in self.code.code_block.frequencies
        }
        # A band tone is only accepted with a code tone that MACs that
        # exact band value at an acceptable counter position.
        window = self.lookahead
        if self._rejection_streak >= self.resync_after:
            window = self.resync_scan
        accepted: tuple[str, int] | None = None
        for event in band_events:
            band = self.tones.band_of(event.frequency)
            for offset in range(window):
                expected = self.code.current_frequency(band, offset)
                if expected in code_frequencies:
                    accepted = (band, offset)
                    break
            if accepted is not None:
                break
        if accepted is None:
            self.rejected_spoofs += len(band_events)
            self._rejection_streak += 1
            return
        band, offset = accepted
        if offset >= self.lookahead:
            self.resyncs += 1
        self._rejection_streak = 0
        self.code.advance(offset + 1)
        if band != self.current_band:
            self.current_band = band
            self.band_history.append((time, band))

    @property
    def is_congested(self) -> bool:
        return self.current_band == "high"
