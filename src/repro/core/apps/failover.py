"""Graceful degradation: fall back to in-band when the air goes bad.

The paper motivates the acoustic channel as the thing that survives
data-plane failure (§1); the dual is just as real — a dead speaker,
failed mic, or saturated room kills the *acoustic* path while the data
plane hums along.  :class:`FailoverManager` closes that gap: it watches
a :class:`~repro.core.health.ChannelHealthMonitor` and, per switch,

* on ``DEGRADED`` or ``DEAD``, **activates** the in-band baseline
  (:mod:`repro.baselines.inband` heartbeats across the data plane) so
  the switch stays monitored;
* on recovery to ``HEALTHY``, **deactivates** it and returns to the
  acoustic channel.

Every switch of direction is recorded as a :class:`FailoverEvent`
(also appended to ``controller.failover_events``) and counted through
:mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ... import obs
from ...baselines.inband import HeartbeatMonitor, HeartbeatSender, HeartbeatStats
from ...infra import BreakerState, BreakerTransition, CircuitBreaker
from ...net.host import Host
from ..controller import MDNController
from ..health import ChannelHealth, ChannelHealthMonitor, HealthTransition

#: How a circuit breaker's verdicts translate into channel health:
#: CLOSED flows, HALF_OPEN is probing (degraded), OPEN is dead.
_BREAKER_HEALTH = {
    BreakerState.CLOSED: ChannelHealth.HEALTHY,
    BreakerState.HALF_OPEN: ChannelHealth.DEGRADED,
    BreakerState.OPEN: ChannelHealth.DEAD,
}


@dataclass(frozen=True)
class FailoverEvent:
    """One management-plane switch of direction for one device."""

    device: str
    time: float
    action: str              #: ``"to_inband"`` or ``"to_acoustic"``
    health: ChannelHealth    #: the health verdict that triggered it


class InbandFallback:
    """The in-band stand-in for one switch: a pausable heartbeat pair.

    ``source`` is a host attached to the monitored switch's data plane,
    ``station`` the management host the heartbeats must reach.  The
    sender starts paused; the failover manager toggles it.
    """

    def __init__(self, source: Host, station: Host,
                 period: float = 0.5) -> None:
        self.source = source
        self.station = station
        self.sender = HeartbeatSender(source, station.ip, period)
        self.sender.stop()  # armed by the failover manager, not at build
        self.monitor = HeartbeatMonitor(station, self.sender)
        self.active = False

    def activate(self) -> None:
        if not self.active:
            self.active = True
            self.sender.start()

    def deactivate(self) -> None:
        if self.active:
            self.active = False
            self.sender.stop()

    def stats(self) -> HeartbeatStats:
        return self.monitor.stats(self.source.sim)


class FailoverManager:
    """Drives per-device in-band fallback from channel-health verdicts.

    Verdicts arrive from two sources over the same decision path: the
    sampling :class:`~repro.core.health.ChannelHealthMonitor`, and any
    per-link :class:`~repro.infra.CircuitBreaker` attached via
    :meth:`bind_breaker` — the breaker's trip is simply a much earlier
    ``DEAD`` verdict than miss-rate sampling can produce, and its
    HALF_OPEN probe cadence (a :class:`~repro.infra.RetryPolicy`) is
    what paces the return to acoustic.

    Parameters
    ----------
    controller:
        The MDN controller; failover events are appended to its
        ``failover_events`` list (and kept on the manager).
    health_monitor:
        The sampling verdict source; the manager subscribes to its
        transitions.  ``None`` for deployments driven purely by
        breaker verdicts.
    fallbacks:
        ``{device_name: InbandFallback}`` — devices without an entry
        are watched but have nowhere to fail over to.
    failover_on:
        Health states that trigger fallback activation.
    """

    def __init__(
        self,
        controller: MDNController,
        health_monitor: ChannelHealthMonitor | None,
        fallbacks: dict[str, InbandFallback],
        failover_on: tuple[ChannelHealth, ...] = (
            ChannelHealth.DEGRADED, ChannelHealth.DEAD,
        ),
    ) -> None:
        self.controller = controller
        self.health_monitor = health_monitor
        self.fallbacks = dict(fallbacks)
        self.failover_on = failover_on
        self.events: list[FailoverEvent] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        self._m_to_inband = obs.counter("failover.to_inband")
        self._m_to_acoustic = obs.counter("failover.to_acoustic")
        if health_monitor is not None:
            health_monitor.on_transition(self._on_transition)

    def bind_breaker(self, device: str, breaker: CircuitBreaker) -> None:
        """Drive ``device``'s fallback from ``breaker``'s verdicts too
        (OPEN → DEAD, HALF_OPEN → DEGRADED, CLOSED → HEALTHY)."""
        self.breakers[device] = breaker
        breaker.on_transition(
            lambda transition: self._on_breaker(device, transition)
        )

    def active_fallbacks(self) -> list[str]:
        """Devices currently monitored in-band."""
        return sorted(
            name for name, fallback in self.fallbacks.items()
            if fallback.active
        )

    def _on_transition(self, transition: HealthTransition) -> None:
        self._apply(transition.emitter, transition.time, transition.state)

    def _on_breaker(self, device: str,
                    transition: BreakerTransition) -> None:
        self._apply(device, transition.time,
                    _BREAKER_HEALTH[transition.state])

    def _apply(self, device: str, time: float,
               health: ChannelHealth) -> None:
        fallback = self.fallbacks.get(device)
        if fallback is None:
            return
        if health in self.failover_on and not fallback.active:
            fallback.activate()
            self._record(device, time, health, "to_inband",
                         self._m_to_inband)
        elif health is ChannelHealth.HEALTHY and fallback.active:
            fallback.deactivate()
            self._record(device, time, health, "to_acoustic",
                         self._m_to_acoustic)

    def _record(self, device: str, time: float, health: ChannelHealth,
                action: str, counter) -> None:
        event = FailoverEvent(
            device=device,
            time=time,
            action=action,
            health=health,
        )
        self.events.append(event)
        counter.inc()
        self.controller.failover_events.append(event)
