"""The six Music-Defined Networking applications from the paper."""

from .discovery import BOOT_TUNE, BootAnnouncer, BootAnnouncement, DiscoveryApp
from .evaluation import (
    PrecisionRecall,
    heavy_hitter_curve,
    heavy_hitter_truth_buckets,
    port_scan_curve,
    scan_truth_intervals,
    score_heavy_hitter,
    score_port_scan,
)
from .failover import FailoverEvent, FailoverManager, InbandFallback
from .fan_watchdog import (
    FanAlert,
    FanWatchdog,
    amplitude_difference,
    log_amplitude_difference,
    signature_bins,
)
from .heavy_hitter import (
    FlowToneMapper,
    HeavyHitterAlert,
    HeavyHitterDetectorApp,
    HeavyHitterEmitter,
)
from .liveness import (
    HeartbeatChirper,
    LivenessAlert,
    LivenessMonitorApp,
    build_liveness_mesh,
)
from .load_balancer import LoadBalancerApp, SplitRule
from .melody_auth import Melody, MelodyAuthenticator
from .port_knocking import KnockConfig, KnockEmitter, PortKnockingApp
from .port_scan import (
    PortScanDetectorApp,
    PortScanEmitter,
    PortToneMapper,
    ScanAlert,
)
from .rate_control import RateControlApp, RateControlPolicy
from .secure_chirp import (
    RollingCode,
    SecureQueueChirper,
    SecureQueueMonitorApp,
)
from .superspreader import (
    AddressToneMapper,
    ChordEmitter,
    SpreaderAlert,
    SuperspreaderDetectorApp,
    VictimAlert,
)
from .queue_monitor import (
    CHIRP_PERIOD,
    FIG5_BAND_FREQUENCIES,
    BandToneMap,
    QueueChirper,
    QueueMonitorApp,
)

__all__ = [
    "AddressToneMapper",
    "BOOT_TUNE",
    "BootAnnouncer",
    "BootAnnouncement",
    "BandToneMap",
    "ChordEmitter",
    "CHIRP_PERIOD",
    "DiscoveryApp",
    "FIG5_BAND_FREQUENCIES",
    "FailoverEvent",
    "FailoverManager",
    "FanAlert",
    "FanWatchdog",
    "InbandFallback",
    "FlowToneMapper",
    "HeavyHitterAlert",
    "HeavyHitterDetectorApp",
    "HeavyHitterEmitter",
    "HeartbeatChirper",
    "LivenessAlert",
    "LivenessMonitorApp",
    "KnockConfig",
    "KnockEmitter",
    "LoadBalancerApp",
    "Melody",
    "MelodyAuthenticator",
    "PortKnockingApp",
    "PortScanDetectorApp",
    "PrecisionRecall",
    "heavy_hitter_curve",
    "heavy_hitter_truth_buckets",
    "port_scan_curve",
    "scan_truth_intervals",
    "score_heavy_hitter",
    "score_port_scan",
    "PortScanEmitter",
    "PortToneMapper",
    "QueueChirper",
    "RateControlApp",
    "RollingCode",
    "RateControlPolicy",
    "QueueMonitorApp",
    "ScanAlert",
    "SecureQueueChirper",
    "SecureQueueMonitorApp",
    "SplitRule",
    "SpreaderAlert",
    "SuperspreaderDetectorApp",
    "VictimAlert",
    "amplitude_difference",
    "build_liveness_mesh",
    "log_amplitude_difference",
    "signature_bins",
]
