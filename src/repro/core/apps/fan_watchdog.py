"""Passive fan-failure detection: Section 7, Figures 6–7.

"To identify failures, we find the total amplitude of each frequency in
recorded sounds with a server fan both on and off; we obtain such
amplitudes by computing the FFT of each given sound sample.  We then
use these amplitudes to classify the state (health) of the fan.  The
difference in amplitude for certain frequencies is considerably larger
when comparing two audio signals of the fan on and off than when
comparing two samples of a functioning fan."

:class:`FanWatchdog` implements exactly that: it captures periodic
samples, computes FFT amplitude profiles, and scores each sample's
*amplitude difference* against a healthy reference profile.  The score
stays near the on↔on baseline while the fan runs and jumps when it
stops; crossing an adaptive threshold raises a failure alert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...audio.channel import AcousticChannel
from ...audio.devices import Microphone
from ...audio.fft import SpectrumAnalyzer
from ...net.stats import TimeSeries


@dataclass(frozen=True)
class FanAlert:
    """A detected fan failure."""

    time: float
    score: float
    threshold: float


def amplitude_difference(
    reference: np.ndarray,
    sample: np.ndarray,
    band: "slice | np.ndarray | None" = None,
) -> float:
    """The paper's comparison metric: total absolute amplitude
    difference between two FFT profiles.

    ``band`` restricts the comparison — a slice, or an index array of
    the bins to compare (the watchdog passes the fan's signature bins:
    "the difference in amplitude for *certain frequencies* is
    considerably larger", §7).
    """
    if reference.shape != sample.shape:
        raise ValueError(
            f"profile shapes differ: {reference.shape} vs {sample.shape}"
        )
    region = band if band is not None else slice(None)
    return float(np.sum(np.abs(reference[region] - sample[region])))


def log_amplitude_difference(
    reference: np.ndarray,
    sample: np.ndarray,
    band: "slice | np.ndarray | None" = None,
) -> float:
    """Amplitude difference in the log (dB) domain.

    Summing |Δ dB| per bin makes the score proportional to *how far*
    each signature line fell, not its absolute pressure — a 25 dB
    collapse of a quiet line counts as much as of a loud one.  This is
    what gives the on→off comparisons their "considerably larger"
    separation from on→on jitter (Figure 7) under heavy ambience.
    """
    if reference.shape != sample.shape:
        raise ValueError(
            f"profile shapes differ: {reference.shape} vs {sample.shape}"
        )
    region = band if band is not None else slice(None)
    ref_db = 20.0 * np.log10(np.maximum(reference[region], 1e-12))
    sample_db = 20.0 * np.log10(np.maximum(sample[region], 1e-12))
    return float(np.sum(np.abs(ref_db - sample_db)))


def signature_bins(reference: np.ndarray, prominence: float = 4.0) -> np.ndarray:
    """Indices of the tonal bins in a healthy reference profile.

    A bin belongs to the signature if its magnitude exceeds
    ``prominence ×`` the profile's median — i.e. it carries a
    narrowband line (blade-pass harmonics) rather than broadband wash.
    Comparing only these bins keeps the score's noise floor independent
    of the FFT size: summing |Δ| over thousands of noise-only bins
    would otherwise swamp the handful of line bins that actually change
    when a fan dies.
    """
    if len(reference) == 0:
        return np.zeros(0, dtype=int)
    floor = max(float(np.median(reference)), 1e-15)
    bins = np.where(reference > prominence * floor)[0]
    if len(bins) == 0:
        # Degenerate profile (no tonal content): fall back to all bins.
        bins = np.arange(len(reference))
    return bins


class FanWatchdog:
    """Periodic FFT amplitude-difference monitor for one server.

    Parameters
    ----------
    channel, microphone:
        The listening scene (see :mod:`repro.fans.room`).
    sample_duration:
        Length of each captured sample, seconds.
    period:
        Spacing between sample starts, seconds.
    baseline_samples:
        How many initial samples form the healthy reference profile
        (averaged).  Alerts are inhibited during the baseline phase.
    threshold_factor:
        Alert when a sample's difference score exceeds
        ``threshold_factor ×`` the largest score observed among the
        baseline (on↔on) comparisons.
    band_hz:
        Restrict the comparison to this frequency band before signature
        selection; None uses the whole spectrum.
    signature_prominence:
        Multiplier over the reference's median magnitude above which a
        bin counts as part of the fan's signature (see
        :func:`signature_bins`).
    smoothing_bins:
        Boxcar width (bins) applied to every profile before comparison.
        Fan RPM wanders a fraction of a percent, smearing each line
        over a few bins between samples; smoothing makes the profiles
        insensitive to that wander while a vanished line still changes
        them completely.
    """

    def __init__(
        self,
        channel: AcousticChannel,
        microphone: Microphone,
        sample_duration: float = 0.25,
        period: float = 0.5,
        baseline_samples: int = 4,
        threshold_factor: float = 3.0,
        band_hz: tuple[float, float] | None = None,
        signature_prominence: float = 4.0,
        smoothing_bins: int = 11,
    ) -> None:
        if baseline_samples < 2:
            raise ValueError("need at least 2 baseline samples")
        if sample_duration <= 0 or period < sample_duration:
            raise ValueError("need period >= sample_duration > 0")
        if smoothing_bins < 1:
            raise ValueError("smoothing_bins must be >= 1")
        self.channel = channel
        self.microphone = microphone
        self.sample_duration = sample_duration
        self.period = period
        self.baseline_samples = baseline_samples
        self.threshold_factor = threshold_factor
        self.band_hz = band_hz
        self.signature_prominence = signature_prominence
        self.smoothing_bins = smoothing_bins
        self._analyzer = SpectrumAnalyzer()
        self._band_slice: slice | None = None
        self._signature: np.ndarray | None = None
        self._reference: np.ndarray | None = None
        self._baseline_profiles: list[np.ndarray] = []
        self._baseline_scores: list[float] = []
        #: Difference score over time — the Figure 7 blue line.
        self.scores = TimeSeries("fan_watchdog.score")
        self.alerts: list[FanAlert] = []

    # ------------------------------------------------------------------

    def _profile(self, start: float) -> np.ndarray:
        window = self.microphone.record(
            self.channel, start, start + self.sample_duration
        )
        spectrum = self._analyzer.analyze(window)
        if self.band_hz is not None and self._band_slice is None:
            low, high = self.band_hz
            indices = np.where(
                (spectrum.frequencies >= low) & (spectrum.frequencies <= high)
            )[0]
            if len(indices) == 0:
                raise ValueError(f"band {self.band_hz} contains no FFT bins")
            self._band_slice = slice(int(indices[0]), int(indices[-1]) + 1)
        magnitudes = spectrum.magnitudes
        if self.smoothing_bins > 1:
            kernel = np.ones(self.smoothing_bins) / self.smoothing_bins
            magnitudes = np.convolve(magnitudes, kernel, mode="same")
        return magnitudes

    @property
    def threshold(self) -> float:
        """The adaptive alert threshold (NaN until the baseline ends)."""
        if len(self._baseline_scores) < self.baseline_samples - 1:
            return float("nan")
        floor = max(self._baseline_scores) if self._baseline_scores else 0.0
        return self.threshold_factor * max(floor, 1e-12)

    def observe(self, start: float) -> float | None:
        """Process the sample starting at ``start``; returns the score
        (None while accumulating the baseline reference)."""
        profile = self._profile(start)
        if self._reference is None:
            self._baseline_profiles.append(profile)
            if len(self._baseline_profiles) >= self.baseline_samples:
                self._finish_baseline()
            return None
        score = log_amplitude_difference(self._reference, profile, self._signature)
        self.scores.record(start, score)
        if score > self.threshold:
            self.alerts.append(FanAlert(start, score, self.threshold))
        return score

    def _finish_baseline(self) -> None:
        self._reference = np.mean(self._baseline_profiles, axis=0)
        region = self._band_slice if self._band_slice is not None else slice(None)
        offset = region.start or 0 if isinstance(region, slice) else 0
        local = signature_bins(self._reference[region], self.signature_prominence)
        self._signature = local + offset
        # On↔on scores: every baseline sample vs the average.
        self._baseline_scores = [
            log_amplitude_difference(self._reference, profile, self._signature)
            for profile in self._baseline_profiles
        ]

    @property
    def signature_bin_indices(self) -> np.ndarray:
        """The FFT bins the watchdog actually compares (post-baseline)."""
        if self._signature is None:
            return np.zeros(0, dtype=int)
        return self._signature

    def run(self, start: float, end: float) -> None:
        """Process samples at ``start, start+period, ...`` up to ``end``.

        Offline convenience for pre-rendered scenes; online use wires
        :meth:`observe` to a simulator timer instead.
        """
        time = start
        while time + self.sample_duration <= end:
            self.observe(time)
            time += self.period

    @property
    def failure_detected(self) -> bool:
        return bool(self.alerts)

    def detection_time(self) -> float | None:
        """When the first alert fired (None if never)."""
        return self.alerts[0].time if self.alerts else None
