"""Acoustic device discovery: hearing a device boot.

Section 1's management-task list starts with "simple device booting,
restart or configuration".  In an MDN deployment the natural boot
announcement is a melody: every device class is assigned a short boot
tune; when a box comes up, its agent plays the tune, and the discovery
app registers the device — acoustic plug-and-play, no DHCP snooping,
no LLDP, no management VLAN.

The tune encodes two things:

* *which class* of device booted (the melody's note pattern, shared by
  the class), and
* *which instance* (the device's own frequency block the notes are
  drawn from — the same disjoint-block identity the rest of MDN uses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.sim import Simulator
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import Allocation

#: The boot tune: note indices into the device's block, played in
#: order.  Three notes keep the announcement under half a second.
BOOT_TUNE = (0, 2, 1)


@dataclass(frozen=True)
class BootAnnouncement:
    """A registered device boot."""

    device: str
    time: float


class BootAnnouncer:
    """Device-side half: plays the boot tune once at start-up."""

    def __init__(
        self,
        sim: Simulator,
        agent: MusicAgent,
        allocation: Allocation,
        boot_time: float = 0.0,
        note_duration: float = 0.12,
        note_gap: float = 0.08,
        level_db: float = 70.0,
    ) -> None:
        if len(allocation) < max(BOOT_TUNE) + 1:
            raise ValueError(
                f"allocation too small for the boot tune: need "
                f"{max(BOOT_TUNE) + 1} notes, have {len(allocation)}"
            )
        self.agent = agent
        self.allocation = allocation
        period = note_duration + note_gap
        for index, note in enumerate(BOOT_TUNE):
            sim.schedule_at(
                boot_time + index * period,
                lambda n=note: agent.play(
                    allocation.frequency_for(n), note_duration, level_db
                ),
            )


class DiscoveryApp:
    """Controller-side half: a registry fed by boot tunes.

    Parameters
    ----------
    devices:
        ``{device_name: allocation}`` for every device that *might*
        appear; discovery confirms which ones actually did (and when).
    window:
        Maximum seconds between a tune's first and last note.
    """

    def __init__(
        self,
        controller: MDNController,
        devices: dict[str, Allocation],
        window: float = 2.0,
    ) -> None:
        if not devices:
            raise ValueError("need at least one candidate device")
        self.controller = controller
        self.devices = dict(devices)
        self.window = window
        self.registry: dict[str, BootAnnouncement] = {}
        #: device -> (progress index, first-note time).
        self._progress: dict[str, tuple[int, float]] = {}
        self._note_of: dict[float, tuple[str, int]] = {}
        for name, allocation in devices.items():
            for note in set(BOOT_TUNE):
                frequency = allocation.frequency_for(note)
                if frequency in self._note_of:
                    raise ValueError(
                        f"devices {self._note_of[frequency][0]!r} and "
                        f"{name!r} share frequency {frequency}"
                    )
                self._note_of[frequency] = (name, note)
        controller.watch(sorted(self._note_of), on_onset=self._on_tone)

    def _on_tone(self, event) -> None:
        device, note = self._note_of[event.frequency]
        if device in self.registry:
            return
        expected_index, started = self._progress.get(device, (0, event.time))
        if note != BOOT_TUNE[expected_index] or \
                event.time - started > self.window:
            # Restart matching: this note may itself be a first note.
            if note == BOOT_TUNE[0]:
                self._progress[device] = (1, event.time)
            else:
                self._progress.pop(device, None)
            return
        expected_index += 1
        if expected_index == len(BOOT_TUNE):
            self.registry[device] = BootAnnouncement(device, event.time)
            self._progress.pop(device, None)
        else:
            self._progress[device] = (expected_index, started)

    def discovered(self) -> list[str]:
        return sorted(self.registry)

    def is_discovered(self, device: str) -> bool:
        return device in self.registry
