"""Music-defined load balancing: Section 6, Figure 5a–b.

Four switches in a rhombus, traffic ramping up over the single (top)
path.  Each switch chirps its queue band every 300 ms.  "When the MDN
controller application hears a sound associated with an overloaded
switch ... it sends an OpenFlow flow-MOD message so that the source
traffic gets split across two ports, balancing the traffic load across
the two different available routes."
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net.controlplane import FlowMod
from ...net.flowtable import Action, Match
from ..controller import MDNController
from .queue_monitor import BandToneMap


@dataclass
class SplitRule:
    """What to install when a switch reports congestion."""

    switch_name: str
    match: Match
    ports: list[int]
    priority: int = 100


class LoadBalancerApp:
    """Controller-side half: congestion tone → traffic split.

    Parameters
    ----------
    controller:
        The listening MDN controller (must hold a control channel).
    tones_by_switch:
        Each monitored switch's band→frequency map.
    rules_by_switch:
        The split FlowMod to install when that switch congests.
    """

    def __init__(
        self,
        controller: MDNController,
        tones_by_switch: dict[str, BandToneMap],
        rules_by_switch: dict[str, SplitRule],
    ) -> None:
        unknown = set(rules_by_switch) - set(tones_by_switch)
        if unknown:
            raise ValueError(f"rules for unmonitored switches: {sorted(unknown)}")
        self.controller = controller
        self.tones_by_switch = tones_by_switch
        self.rules_by_switch = rules_by_switch
        #: switch → time the split was installed.
        self.rebalanced_at: dict[str, float] = {}
        #: (time, switch, band) log of every band tone heard.
        self.tone_log: list[tuple[float, str, str]] = []
        for switch_name, tones in tones_by_switch.items():
            controller.watch(
                tones.frequencies(),
                on_detection=self._make_handler(switch_name, tones),
            )

    def _make_handler(self, switch_name: str, tones: BandToneMap):
        def handle(event) -> None:
            band = tones.band_of(event.frequency)
            self.tone_log.append((event.time, switch_name, band))
            if band == "high":
                self._rebalance(switch_name, event.time)

        return handle

    def _rebalance(self, switch_name: str, time: float) -> None:
        if switch_name in self.rebalanced_at:
            return  # split already installed
        rule = self.rules_by_switch.get(switch_name)
        if rule is None:
            return  # monitored but no action configured
        self.controller.send_flow_mod(
            rule.switch_name,
            FlowMod(
                match=rule.match,
                action=Action.split(rule.ports),
                priority=rule.priority,
            ),
        )
        self.rebalanced_at[switch_name] = time

    @property
    def any_rebalanced(self) -> bool:
        return bool(self.rebalanced_at)
