"""Melody authentication: port knocking with rhythm.

Section 4 frames sound sequences as "an (additional) out-of-band
authentication mechanism" and notes that any finite state machine can
be driven by tones.  The basic port-knocking app accepts the right
notes in the right order *whenever* they arrive; a melody also has
**timing**.  :class:`MelodyAuthenticator` enforces it: each successive
note must arrive within ``max_gap`` seconds of the previous one, or the
attempt resets — which defeats the slow brute-force where an attacker
sprays one knock per hour until the sequence happens to line up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..controller import MDNController
from ..frequency_plan import Allocation
from ..fsm import StateMachine, sequence_machine


@dataclass(frozen=True)
class Melody:
    """The shared secret: an ordered tone sequence with a tempo bound.

    Attributes
    ----------
    notes:
        Indices into the allocation (the tune, e.g. ``(0, 2, 1, 3)``).
    allocation:
        The frequency block the notes come from.
    max_gap:
        Maximum seconds between consecutive notes.
    """

    notes: tuple[int, ...]
    allocation: Allocation
    max_gap: float = 2.0

    def __post_init__(self) -> None:
        if len(self.notes) < 2:
            raise ValueError("a melody needs at least two notes")
        if self.max_gap <= 0:
            raise ValueError("max_gap must be positive")
        for note in self.notes:
            if not 0 <= note < len(self.allocation):
                raise ValueError(f"note {note} outside the allocation")

    def frequencies(self) -> list[float]:
        """The distinct frequencies the melody uses."""
        return sorted({
            self.allocation.frequency_for(note) for note in self.notes
        })

    def frequency_of(self, note: int) -> float:
        return self.allocation.frequency_for(note)


class MelodyAuthenticator:
    """Controller-side listener accepting one timed melody.

    On acceptance, ``on_accept(time)`` fires once; the machine then
    latches until :meth:`reset`.
    """

    def __init__(
        self,
        controller: MDNController,
        melody: Melody,
        on_accept=None,
        refractory: float = 0.25,
    ) -> None:
        self.controller = controller
        self.melody = melody
        self.on_accept = on_accept
        self.refractory = refractory
        self.machine: StateMachine = sequence_machine(list(melody.notes))
        self.accepted_at: float | None = None
        self.attempt_log: list[tuple[float, int]] = []
        self.timeouts = 0
        self._last_note_time: float | None = None
        self._last_event: tuple[float, float] | None = None
        self._note_of_frequency = {
            melody.frequency_of(note): note for note in set(melody.notes)
        }
        controller.watch(melody.frequencies(), on_onset=self._on_tone)

    @property
    def accepted(self) -> bool:
        return self.accepted_at is not None

    def reset(self) -> None:
        """Re-arm after an acceptance (or administratively)."""
        self.machine.reset()
        self.accepted_at = None
        self._last_note_time = None

    def _on_tone(self, event) -> None:
        if self.accepted:
            return
        # Debounce: one physical tone spanning windows, or echoes.
        if (self._last_event is not None
                and event.frequency == self._last_event[1]
                and event.time - self._last_event[0] < self.refractory):
            return
        self._last_event = (event.time, event.frequency)

        note = self._note_of_frequency[event.frequency]
        if (self._last_note_time is not None
                and event.time - self._last_note_time > self.melody.max_gap):
            self.timeouts += 1
            self.machine.reset()
        self._last_note_time = event.time
        self.attempt_log.append((event.time, note))
        self.machine.feed(note)
        if self.machine.accepted:
            self.accepted_at = event.time
            if self.on_accept is not None:
                self.on_accept(event.time)
