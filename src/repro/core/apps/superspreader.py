"""DDoS / k-superspreader detection: the open problem of Section 5.

"A k-superspreader is a host that contacts more than k unique
destinations during a time interval.  A DDoS victim is a host that is
contacted by more than k unique sources.  By mapping destination
addresses to frequencies, we can presumably detect k-superspreaders and
hence a DDoS.  We leave that as an open problem."

This module solves it with the most musical tool available: **chords**.
For each observed (src, dst) pair the switch plays *two* tones
simultaneously — the source address's tone from one frequency block and
the destination address's tone from a second, disjoint block.  The
controller correlates tones co-occurring in the same capture window:

* a source tone co-heard with many *distinct* destination tones per
  interval → that source contacts many destinations → superspreader;
* a destination tone co-heard with many distinct source tones →
  that host is being contacted by many sources → DDoS victim.

Bucketing caveats are the same as for the heavy-hitter app: addresses
hash into blocks of limited size, so very large attacks alias — which
only makes them *easier* to spot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ...net.packet import Packet
from ...net.switch import Switch
from ..agent import MusicAgent
from ..controller import MDNController
from ..frequency_plan import Allocation


def _address_bucket(address: str, size: int) -> int:
    digest = hashlib.blake2b(address.encode(), digest_size=4).digest()
    return int.from_bytes(digest, "big") % size


class AddressToneMapper:
    """Two disjoint blocks: one for source, one for destination
    addresses."""

    def __init__(self, src_block: Allocation, dst_block: Allocation) -> None:
        if set(src_block.frequencies) & set(dst_block.frequencies):
            raise ValueError("src and dst blocks must be disjoint")
        self.src_block = src_block
        self.dst_block = dst_block

    def src_frequency(self, address: str) -> float:
        return self.src_block.frequency_for(
            _address_bucket(address, len(self.src_block))
        )

    def dst_frequency(self, address: str) -> float:
        return self.dst_block.frequency_for(
            _address_bucket(address, len(self.dst_block))
        )

    def all_frequencies(self) -> list[float]:
        return sorted(
            set(self.src_block.frequencies) | set(self.dst_block.frequencies)
        )


class ChordEmitter:
    """Switch-side half: one (src, dst) chord per pair per period.

    Needs a ``busy_policy="queue"`` agent or, better, two agents — but
    since a chord is *one* scheduling decision, this emitter schedules
    both tones directly at the same instant through two speakers (a
    stereo Pi, so to speak): pass two agents.
    """

    def __init__(
        self,
        switch: Switch,
        src_agent: MusicAgent,
        dst_agent: MusicAgent,
        mapper: AddressToneMapper,
        emission_period: float = 0.15,
        tone_duration: float = 0.08,
        tone_level_db: float = 70.0,
    ) -> None:
        if src_agent is dst_agent:
            raise ValueError("chord emission needs two independent speakers")
        self.switch = switch
        self.src_agent = src_agent
        self.dst_agent = dst_agent
        self.mapper = mapper
        self.emission_period = emission_period
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self._last_emission: dict[tuple[float, float], float] = {}
        self.chords_played = 0
        switch.on_receive(self._on_packet)

    def _on_packet(self, packet: Packet, in_port: int) -> None:
        chord = (
            self.mapper.src_frequency(packet.flow.src_ip),
            self.mapper.dst_frequency(packet.flow.dst_ip),
        )
        now = self.switch.sim.now
        last = self._last_emission.get(chord)
        if last is not None and now - last < self.emission_period:
            return
        self._last_emission[chord] = now
        played_src = self.src_agent.play(chord[0], self.tone_duration,
                                         self.tone_level_db)
        played_dst = self.dst_agent.play(chord[1], self.tone_duration,
                                         self.tone_level_db)
        if played_src and played_dst:
            self.chords_played += 1


@dataclass(frozen=True)
class SpreaderAlert:
    """A source bucket contacting too many destination buckets."""

    interval_start: float
    src_frequency: float
    distinct_destinations: int


@dataclass(frozen=True)
class VictimAlert:
    """A destination bucket contacted by too many source buckets."""

    interval_start: float
    dst_frequency: float
    distinct_sources: int


class SuperspreaderDetectorApp:
    """Controller-side half: chord correlation per interval.

    Parameters
    ----------
    k:
        The superspreader threshold: strictly more than ``k`` distinct
        counterpart buckets within one interval raises the alert.
    """

    def __init__(
        self,
        controller: MDNController,
        mapper: AddressToneMapper,
        interval: float = 1.0,
        k: int = 5,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.controller = controller
        self.mapper = mapper
        self.interval = interval
        self.k = k
        self.spreader_alerts: list[SpreaderAlert] = []
        self.victim_alerts: list[VictimAlert] = []
        self._interval_start: float | None = None
        #: src tone -> set of dst tones co-heard this interval.
        self._fanout: dict[float, set[float]] = {}
        #: dst tone -> set of src tones co-heard this interval.
        self._fanin: dict[float, set[float]] = {}
        controller.watch(mapper.all_frequencies(),
                         on_detection=lambda event: None)
        controller.on_window(self._on_window)

    def _on_window(self, events, time: float) -> None:
        if self._interval_start is None:
            self._interval_start = (time // self.interval) * self.interval
        while time >= self._interval_start + self.interval:
            self._close_interval()
        src_set = set(self.mapper.src_block.frequencies)
        dst_set = set(self.mapper.dst_block.frequencies)
        sources = [e.frequency for e in events if e.frequency in src_set]
        destinations = [e.frequency for e in events if e.frequency in dst_set]
        # Every co-occurring (src, dst) tone pair is a candidate chord.
        for src in sources:
            self._fanout.setdefault(src, set()).update(destinations)
        for dst in destinations:
            self._fanin.setdefault(dst, set()).update(sources)

    def _close_interval(self) -> None:
        # Runs exactly once per interval, and the fan maps reset below,
        # so (start, tone) pairs can never repeat — no dedup set needed.
        assert self._interval_start is not None
        start = self._interval_start
        for src, destinations in sorted(self._fanout.items()):
            if len(destinations) > self.k:
                self.spreader_alerts.append(
                    SpreaderAlert(start, src, len(destinations))
                )
        for dst, sources in sorted(self._fanin.items()):
            if len(sources) > self.k:
                self.victim_alerts.append(
                    VictimAlert(start, dst, len(sources))
                )
        self._fanout = {}
        self._fanin = {}
        self._interval_start = start + self.interval

    @property
    def superspreader_detected(self) -> bool:
        return bool(self.spreader_alerts)

    @property
    def ddos_detected(self) -> bool:
        return bool(self.victim_alerts)

    def is_source_flagged(self, address: str) -> bool:
        frequency = self.mapper.src_frequency(address)
        return any(alert.src_frequency == frequency
                   for alert in self.spreader_alerts)

    def is_victim_flagged(self, address: str) -> bool:
        frequency = self.mapper.dst_frequency(address)
        return any(alert.dst_frequency == frequency
                   for alert in self.victim_alerts)
