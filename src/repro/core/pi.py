"""The Raspberry Pi as a network host: Figure 1, faithfully.

"We modified the firmware of the Zodiac FX switches, so that when we
want the switch to play a sound, a Music Protocol (MP) message is sent
to the Pi.  ...  To support MP message marshaling on the Zodiac FX
switches, we had to disable OpenFlow on the switch Ethernet port
connected to the Pi."

Most of this reproduction lets applications drive the
:class:`~repro.core.agent.MusicAgent` directly — functionally
equivalent and simpler to wire.  This module provides the *faithful*
path for when fidelity matters: the MP message travels as real bytes in
a real packet over a real (simulated) Ethernet link from the switch to
a Pi host, which unmarshals the wire format and drives the speaker.
The MP bytes therefore experience serialization delay, can queue behind
other traffic on the Pi link, and are subject to the same failure modes
as any packet — exactly like the testbed.
"""

from __future__ import annotations

from ..audio.devices import DeviceCapabilityError
from ..net.host import Host
from ..net.link import Link
from ..net.packet import FlowKey, Packet, Protocol
from ..net.sim import Simulator
from ..net.stats import Counter
from ..net.switch import Switch
from .agent import MusicAgent
from .protocol import MusicProtocolError, MusicProtocolMessage

#: UDP port the Pi listens on for MP messages.
MP_PORT = 5005

#: The Pi link's rate: the Zodiac FX management port is 100 Mb/s but
#: the paper's LwIP raw-API path is nowhere near line rate; 10 Mb/s is
#: generous and keeps MP delivery sub-millisecond either way.
PI_LINK_BANDWIDTH = 10_000_000.0


class RaspberryPi(Host):
    """A Pi host that unmarshals MP packets and plays their tones."""

    def __init__(self, sim: Simulator, name: str, ip: str,
                 agent: MusicAgent) -> None:
        super().__init__(sim, name, ip)
        self.agent = agent
        self.mp_played = Counter(f"{name}.mp_played")
        self.mp_rejected = Counter(f"{name}.mp_rejected")
        self.on_delivery(self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.flow.dst_port != MP_PORT:
            return
        try:
            message = MusicProtocolMessage.unmarshal(packet.payload)
        except MusicProtocolError:
            self.mp_rejected.increment()
            return
        try:
            self.agent.handle_message(message)
        except DeviceCapabilityError:
            # The switch asked for a tone the speaker cannot make.
            self.mp_rejected.increment()
            return
        self.mp_played.increment()


class PiBridge:
    """Wires a Pi to a dedicated switch port and sends MP messages.

    The bridge installs no flow entry for the Pi port ("we had to
    disable OpenFlow on the switch Ethernet port connected to the Pi"):
    MP packets are transmitted straight out of the dedicated port,
    bypassing the flow table, and nothing is ever forwarded *to* the
    data plane from it.

    Parameters
    ----------
    sim:
        The shared clock.
    switch:
        The switch gaining sound capability.
    agent:
        The Pi's speaker driver.
    pi_port:
        The switch-local port number to dedicate (must be unused).
    """

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        agent: MusicAgent,
        pi_port: int = 99,
        bandwidth_bps: float = PI_LINK_BANDWIDTH,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.pi_port = pi_port
        pi_ip = f"192.168.99.{(hash(switch.name) % 200) + 1}"
        self.pi = RaspberryPi(sim, f"{switch.name}-pi", pi_ip, agent)
        Link(sim, switch, pi_port, self.pi, Host.NIC_PORT,
             bandwidth_bps=bandwidth_bps, delay=0.000_05)
        self.mp_sent = Counter(f"{switch.name}.mp_sent")
        self._flow = FlowKey(
            "0.0.0.0", pi_ip, MP_PORT, MP_PORT, Protocol.UDP
        )

    def send_mp(self, message: MusicProtocolMessage) -> bool:
        """Marshal and transmit one MP message out the Pi port."""
        wire = message.marshal()
        packet = Packet(
            self._flow,
            size_bytes=len(wire) + 42,  # + Ethernet/IP/UDP headers
            created_at=self.sim.now,
            is_management=True,
            payload=wire,
        )
        self.mp_sent.increment()
        return self.switch.transmit(packet, self.pi_port)

    def play(self, frequency: float, duration: float = 0.05,
             intensity_db: float = 70.0) -> bool:
        """Convenience mirroring :meth:`MusicAgent.play`, over the wire."""
        return self.send_mp(
            MusicProtocolMessage(frequency, duration, intensity_db)
        )
