"""The Raspberry Pi as a network host: Figure 1, faithfully.

"We modified the firmware of the Zodiac FX switches, so that when we
want the switch to play a sound, a Music Protocol (MP) message is sent
to the Pi.  ...  To support MP message marshaling on the Zodiac FX
switches, we had to disable OpenFlow on the switch Ethernet port
connected to the Pi."

Most of this reproduction lets applications drive the
:class:`~repro.core.agent.MusicAgent` directly — functionally
equivalent and simpler to wire.  This module provides the *faithful*
path for when fidelity matters: the MP message travels as real bytes in
a real packet over a real (simulated) Ethernet link from the switch to
a Pi host, which unmarshals the wire format and drives the speaker.
The MP bytes therefore experience serialization delay, can queue behind
other traffic on the Pi link, and are subject to the same failure modes
as any packet — exactly like the testbed.
"""

from __future__ import annotations

from ..audio.devices import DeviceCapabilityError
from ..net.host import Host
from ..net.link import Link
from ..net.packet import FlowKey, Packet, Protocol
from ..net.sim import Simulator
from ..net.stats import Counter
from ..net.switch import Switch
from .agent import MusicAgent
from .protocol import (
    PLAN_MAGIC,
    MusicProtocolError,
    MusicProtocolMessage,
    PlanControlMessage,
)

#: UDP port the Pi listens on for MP messages.
MP_PORT = 5005

#: UDP port ARQ acknowledgements travel back on (Pi → switch).
MP_ACK_PORT = 5006

#: Destination address on ACK frames.  The ACK is consumed at the
#: switch by the ARQ sender's receive hook (the Pi port is outside the
#: flow table), so it needs no routable address.
MP_ACK_ADDRESS = "0.0.0.0"

#: ARQ framing on the Pi link: a DATA frame is ``b"MD" + seq(2, BE) +``
#: the 12-byte MP wire message; an ACK frame is ``b"MA" + seq(2, BE)``.
#: Bare 12-byte MP frames (the legacy fire-and-forget path) are still
#: accepted and never acknowledged.
ARQ_DATA_MAGIC = b"MD"
ARQ_ACK_MAGIC = b"MA"
ARQ_DATA_SIZE = 4 + 12
ARQ_ACK_SIZE = 4

#: The Pi link's rate: the Zodiac FX management port is 100 Mb/s but
#: the paper's LwIP raw-API path is nowhere near line rate; 10 Mb/s is
#: generous and keeps MP delivery sub-millisecond either way.
PI_LINK_BANDWIDTH = 10_000_000.0


class RaspberryPi(Host):
    """A Pi host that unmarshals MP packets and plays their tones.

    Besides the legacy 12-byte fire-and-forget path, the Pi is the
    responder half of the MP ARQ mode: a framed DATA packet that
    unmarshals cleanly is acknowledged back to the switch with its
    sequence number, so the sender can stop retransmitting.  The Pi can
    also :meth:`crash` (power loss, kernel panic): while down it drops
    every MP frame — and therefore acknowledges nothing — until
    :meth:`restart`.
    """

    def __init__(self, sim: Simulator, name: str, ip: str,
                 agent: MusicAgent) -> None:
        super().__init__(sim, name, ip)
        self.agent = agent
        self.crashed = False
        self.mp_played = Counter(f"{name}.mp_played")
        self.mp_rejected = Counter(f"{name}.mp_rejected")
        self.mp_dropped_crashed = Counter(f"{name}.mp_dropped_crashed")
        self.acks_sent = Counter(f"{name}.acks_sent")
        self.plan_handled = Counter(f"{name}.plan_handled")
        #: Optional ``handler(PlanControlMessage) -> bool`` for plan
        #: control frames (spectrum migration).  A handler returning
        #: True earns the frame its ARQ ACK; with no handler installed
        #: plan frames are rejected (the sender keeps retransmitting
        #: until its deadline).
        self.plan_handler = None
        #: Distinct ARQ sequence numbers played at least once (the
        #: deduplicated delivery set retransmissions are judged by).
        self.mp_seen_seqs: set[int] = set()
        self.on_delivery(self._on_packet)

    def crash(self) -> None:
        """Take the Pi down: every MP frame is dropped until restart."""
        self.crashed = True

    def restart(self) -> None:
        self.crashed = False

    def _on_packet(self, packet: Packet) -> None:
        if packet.flow.dst_port != MP_PORT:
            return
        if self.crashed:
            self.mp_dropped_crashed.increment()
            return
        wire = packet.payload
        sequence: int | None = None
        if len(wire) >= 4 and wire[:2] == ARQ_DATA_MAGIC:
            sequence = int.from_bytes(wire[2:4], "big")
            wire = wire[4:]
        if wire[:2] == PLAN_MAGIC:
            self._on_plan_frame(wire, sequence)
            return
        try:
            message = MusicProtocolMessage.unmarshal(wire)
        except MusicProtocolError:
            # Truncated or bit-flipped on the link; an ARQ frame earns
            # no ACK, so the sender retransmits.
            self.mp_rejected.increment()
            return
        try:
            self.agent.handle_message(message)
        except DeviceCapabilityError:
            # The switch asked for a tone the speaker cannot make.
            self.mp_rejected.increment()
            return
        self.mp_played.increment()
        if sequence is not None:
            self.mp_seen_seqs.add(sequence)
            self._send_ack(sequence)

    def _on_plan_frame(self, wire: bytes, sequence: int | None) -> None:
        if self.plan_handler is None:
            self.mp_rejected.increment()
            return
        try:
            message = PlanControlMessage.unmarshal(wire)
        except MusicProtocolError:
            self.mp_rejected.increment()
            return
        if not self.plan_handler(message):
            self.mp_rejected.increment()
            return
        self.plan_handled.increment()
        if sequence is not None:
            self.mp_seen_seqs.add(sequence)
            self._send_ack(sequence)

    def _send_ack(self, sequence: int) -> None:
        flow = FlowKey(self.ip, MP_ACK_ADDRESS, MP_ACK_PORT, MP_ACK_PORT,
                       Protocol.UDP)
        ack = Packet(
            flow,
            size_bytes=ARQ_ACK_SIZE + 42,
            created_at=self.sim.now,
            is_management=True,
            payload=ARQ_ACK_MAGIC + sequence.to_bytes(2, "big"),
        )
        self.acks_sent.increment()
        self.send_packet(ack)


class PiBridge:
    """Wires a Pi to a dedicated switch port and sends MP messages.

    The bridge installs no flow entry for the Pi port ("we had to
    disable OpenFlow on the switch Ethernet port connected to the Pi"):
    MP packets are transmitted straight out of the dedicated port,
    bypassing the flow table, and nothing is ever forwarded *to* the
    data plane from it.

    Parameters
    ----------
    sim:
        The shared clock.
    switch:
        The switch gaining sound capability.
    agent:
        The Pi's speaker driver.
    pi_port:
        The switch-local port number to dedicate (must be unused).
    """

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        agent: MusicAgent,
        pi_port: int = 99,
        bandwidth_bps: float = PI_LINK_BANDWIDTH,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.pi_port = pi_port
        pi_ip = f"192.168.99.{(hash(switch.name) % 200) + 1}"
        self.pi = RaspberryPi(sim, f"{switch.name}-pi", pi_ip, agent)
        self.link = Link(sim, switch, pi_port, self.pi, Host.NIC_PORT,
                         bandwidth_bps=bandwidth_bps, delay=0.000_05)
        self.mp_sent = Counter(f"{switch.name}.mp_sent")
        self._flow = FlowKey(
            "0.0.0.0", pi_ip, MP_PORT, MP_PORT, Protocol.UDP
        )

    def send_mp(self, message: MusicProtocolMessage) -> bool:
        """Marshal and transmit one MP message out the Pi port."""
        wire = message.marshal()
        packet = Packet(
            self._flow,
            size_bytes=len(wire) + 42,  # + Ethernet/IP/UDP headers
            created_at=self.sim.now,
            is_management=True,
            payload=wire,
        )
        self.mp_sent.increment()
        return self.switch.transmit(packet, self.pi_port)

    def play(self, frequency: float, duration: float = 0.05,
             intensity_db: float = 70.0) -> bool:
        """Convenience mirroring :meth:`MusicAgent.play`, over the wire."""
        return self.send_mp(
            MusicProtocolMessage(frequency, duration, intensity_db)
        )
