"""The MusicAgent: the Raspberry Pi bolted to a switch.

In the testbed (Figure 1) each Zodiac FX switch sends Music Protocol
messages to an attached Pi, which drives a speaker.  The agent here is
that Pi: it consumes :class:`~repro.core.protocol.MusicProtocolMessage`s
and schedules the corresponding tones on the acoustic channel at the
current simulation time.

Hardware constraints are enforced at this layer:

* tones shorter than the speaker's minimum (~30 ms on the paper's
  testbed) are rejected;
* the speaker is half-duplex — while a tone is sounding, further
  requests are either dropped or coalesced, governed by
  ``busy_policy`` (real single-driver speakers cannot mix arbitrary
  simultaneous tones; the paper's per-packet telemetry sounds are
  naturally rate-limited the same way).
"""

from __future__ import annotations

from ..audio.channel import AcousticChannel
from ..audio.devices import Speaker
from ..net.sim import Simulator
from ..net.stats import Counter
from .protocol import MusicProtocolMessage


class MusicAgent:
    """Plays MP messages on a speaker, at simulation time.

    Parameters
    ----------
    sim:
        The shared clock.
    channel:
        The air.
    speaker:
        The attached driver (position + capability envelope).
    name:
        Agent label (usually the switch or server name).
    busy_policy:
        ``"drop"`` — requests arriving while the speaker is busy are
        discarded (counted in ``dropped``); ``"queue"`` — they are
        played back-to-back after the current tone.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: AcousticChannel,
        speaker: Speaker,
        name: str = "agent",
        busy_policy: str = "drop",
    ) -> None:
        if busy_policy not in ("drop", "queue"):
            raise ValueError(f"unknown busy_policy {busy_policy!r}")
        self.sim = sim
        self.channel = channel
        self.speaker = speaker
        self.name = name
        self.busy_policy = busy_policy
        self.played = Counter(f"{name}.tones_played")
        self.dropped = Counter(f"{name}.tones_dropped")
        #: Simulation time until which the speaker is occupied.
        self._busy_until = 0.0

    @property
    def is_busy(self) -> bool:
        return self.sim.now < self._busy_until

    def handle_message(self, message: MusicProtocolMessage) -> bool:
        """Play (or queue/drop) the tone an MP message requests.

        Returns True if the tone was scheduled.
        """
        spec = message.to_tone_spec()
        self.speaker.validate(spec)
        start = self.sim.now
        if self.is_busy:
            if self.busy_policy == "drop":
                self.dropped.increment()
                return False
            start = self._busy_until
        self.speaker.play(self.channel, start, spec)
        self._busy_until = start + spec.duration
        self.played.increment()
        return True

    def handle_wire(self, wire: bytes) -> bool:
        """Unmarshal a raw MP message and play it (the LwIP path)."""
        return self.handle_message(MusicProtocolMessage.unmarshal(wire))

    def play(
        self, frequency: float, duration: float = 0.05, intensity_db: float = 70.0
    ) -> bool:
        """Convenience: build and handle an MP message in one call."""
        return self.handle_message(
            MusicProtocolMessage(frequency, duration, intensity_db)
        )
