"""The Music-Defined Networking core: protocol, planning, agent,
controller, state machines and the six paper applications."""

from .agent import MusicAgent
from .arq import (
    AckToneResponder,
    ArqConfig,
    ArqStats,
    MpArqSender,
    ToneArqSender,
)
from .array import ArrayDetection, MicrophoneArray
from .controller import MDNController
from .health import (
    ChannelHealth,
    ChannelHealthMonitor,
    HealthTransition,
)
from .frequency_plan import (
    DEFAULT_BAND,
    DEFAULT_GUARD_HZ,
    Allocation,
    FrequencyPlan,
    FrequencyPlanError,
)
from .fsm import FSMError, StateMachine, sequence_machine
from .protocol import (
    MAX_DURATION_S,
    MAX_FREQUENCY_HZ,
    MAX_INTENSITY_DB,
    PLAN_ABORT,
    PLAN_COMMIT,
    PLAN_PREPARE,
    WIRE_SIZE,
    MusicProtocolError,
    MusicProtocolMessage,
    PlanControlMessage,
)
from .spectrum import (
    FrequencyMove,
    InterferenceSentinel,
    LocalPlanParticipant,
    MigrationRecord,
    PiPlanParticipant,
    SpectrumAgilityManager,
    replan,
    shadowed_slots,
)
from .localize import (
    LocalizationResult,
    TdoaLocalizer,
    envelope_delay,
    gcc_phat_delay,
    onset_quality,
    tone_onset_time,
)
from .messaging import AcousticMessageService, ReceivedFrame
from .pi import MP_ACK_PORT, MP_PORT, PiBridge, RaspberryPi
from .relay import ToneRelay, build_relay_chain
from .telemetry import IntervalCounts, ToneCounter

__all__ = [
    "AckToneResponder",
    "AcousticMessageService",
    "Allocation",
    "ArqConfig",
    "ArqStats",
    "ArrayDetection",
    "ChannelHealth",
    "ChannelHealthMonitor",
    "HealthTransition",
    "MpArqSender",
    "ToneArqSender",
    "DEFAULT_BAND",
    "DEFAULT_GUARD_HZ",
    "FSMError",
    "FrequencyPlan",
    "FrequencyPlanError",
    "IntervalCounts",
    "LocalizationResult",
    "MAX_DURATION_S",
    "MAX_FREQUENCY_HZ",
    "MAX_INTENSITY_DB",
    "MDNController",
    "MP_ACK_PORT",
    "MP_PORT",
    "MicrophoneArray",
    "MusicAgent",
    "PiBridge",
    "RaspberryPi",
    "MusicProtocolError",
    "MusicProtocolMessage",
    "PlanControlMessage",
    "PLAN_ABORT",
    "PLAN_COMMIT",
    "PLAN_PREPARE",
    "FrequencyMove",
    "InterferenceSentinel",
    "LocalPlanParticipant",
    "MigrationRecord",
    "PiPlanParticipant",
    "SpectrumAgilityManager",
    "replan",
    "shadowed_slots",
    "ReceivedFrame",
    "StateMachine",
    "TdoaLocalizer",
    "ToneRelay",
    "ToneCounter",
    "WIRE_SIZE",
    "build_relay_chain",
    "envelope_delay",
    "gcc_phat_delay",
    "onset_quality",
    "tone_onset_time",
    "sequence_machine",
]
