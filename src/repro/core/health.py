"""Per-emitter acoustic channel health: HEALTHY / DEGRADED / DEAD.

Self-Healing Audio System (arXiv:1511.08587) argues acoustic
deployments need automated failure detection; MDN's version is passive:
the controller already hears every emitter's periodic chirp, so channel
health falls out of the detection stream it produces.  For each
monitored emitter the monitor tracks

* **chirp liveness** — time since the last heard beat, measured
  against the emitter's inferred beat grid (``origin + n·period``), so
  a late first beat cannot stretch later deadlines;
* **miss rate** — the fraction of recent grid slots with no detection;
* **SNR proxy** — the mean detected level margin above the detector's
  floor (``min_level_db``), the closest observable to SNR the
  detection stream carries.

Classification: ``DEAD`` after ``dead_misses`` consecutive missed
beats; ``DEGRADED`` when the miss rate or SNR margin crosses its
threshold; ``HEALTHY`` otherwise.  Transitions are dispatched to
subscribers (the failover layer) and counted through :mod:`repro.obs`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from .controller import MDNController


class ChannelHealth(enum.Enum):
    """Health verdict for one emitter's acoustic path."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


@dataclass(frozen=True)
class HealthTransition:
    """One emitter changing state."""

    emitter: str
    time: float
    previous: ChannelHealth
    state: ChannelHealth
    miss_rate: float
    snr_margin_db: float


@dataclass
class _EmitterTrack:
    """Per-emitter detection bookkeeping."""

    origin: float | None = None      #: inferred beat-grid anchor
    last_slot: int = -1              #: newest grid slot with a beat
    last_heard: float | None = None  #: raw time of the newest beat
    heard_slots: set[int] = field(default_factory=set)
    levels: deque = field(default_factory=lambda: deque(maxlen=16))
    state: ChannelHealth = ChannelHealth.HEALTHY
    #: When the current unbroken run of HEALTHY verdicts began, while
    #: the committed state is still DEGRADED/DEAD (recovery hysteresis).
    clean_since: float | None = None


TransitionCallback = Callable[[HealthTransition], None]


class ChannelHealthMonitor:
    """Classifies each emitter's channel from the controller's stream.

    Parameters
    ----------
    controller:
        The listening controller; the monitor subscribes to the
        emitters' frequencies and to every processed window.  Must be
        constructed before ``controller.start()``.
    emitters:
        ``{emitter_name: chirp_frequency}``.
    period:
        The agreed chirp period (the emitters' heartbeat grid).
    window_beats:
        How many recent grid slots the miss rate is computed over.
    degraded_miss_rate:
        Miss-rate threshold (fraction, over ``window_beats``) at or
        above which a living emitter is DEGRADED.
    dead_misses:
        Consecutive missed beats before DEAD.
    min_snr_margin_db:
        Mean level margin above the detector floor below which the
        emitter is DEGRADED (weak speaker, rising noise).
    liveness_slack:
        Added to the DEAD deadline on top of ``dead_misses`` periods;
        defaults to one listening interval (detection granularity).
    recovery_beats:
        Recovery hysteresis: a DEGRADED or DEAD emitter returns to
        HEALTHY only after its instantaneous verdict has been clean for
        this many consecutive beat intervals.  Without it a single
        clean beat could flip a small miss window below threshold and
        bounce the state (flapping the failover layer); 1 restores the
        flip-on-first-clean-beat behaviour.
    """

    def __init__(
        self,
        controller: MDNController,
        emitters: dict[str, float],
        period: float,
        window_beats: int = 10,
        degraded_miss_rate: float = 0.34,
        dead_misses: int = 2,
        min_snr_margin_db: float = 3.0,
        liveness_slack: float | None = None,
        recovery_beats: int = 2,
    ) -> None:
        if not emitters:
            raise ValueError("need at least one emitter")
        if period <= 0:
            raise ValueError("period must be positive")
        if dead_misses < 1:
            raise ValueError("dead_misses must be >= 1")
        if recovery_beats < 1:
            raise ValueError("recovery_beats must be >= 1")
        if not 0.0 < degraded_miss_rate <= 1.0:
            raise ValueError("degraded_miss_rate must be in (0, 1]")
        self.controller = controller
        self.emitters = dict(emitters)
        self.period = period
        self.window_beats = window_beats
        self.degraded_miss_rate = degraded_miss_rate
        self.dead_misses = dead_misses
        self.recovery_beats = recovery_beats
        self.min_snr_margin_db = min_snr_margin_db
        self.liveness_slack = (
            controller.listen_interval if liveness_slack is None
            else liveness_slack
        )
        self._frequency_to_emitter = {
            float(frequency): name for name, frequency in emitters.items()
        }
        if len(self._frequency_to_emitter) != len(emitters):
            raise ValueError("emitter frequencies must be unique")
        self._tracks = {name: _EmitterTrack() for name in emitters}
        self._start_time = controller.sim.now
        self._subscribers: list[TransitionCallback] = []
        self.transitions: list[HealthTransition] = []
        self._m_transitions = obs.counter("health.transitions")
        self._m_dead = obs.counter("health.dead_declared")
        self._m_degraded = obs.counter("health.degraded_declared")
        controller.watch(list(emitters.values()),
                         on_detection=self._on_detection)
        controller.on_window(self._on_window)

    # ------------------------------------------------------------------
    # Subscription / queries
    # ------------------------------------------------------------------

    def on_transition(self, callback: TransitionCallback) -> None:
        """Call ``callback(transition)`` on every state change."""
        self._subscribers.append(callback)

    def state_of(self, emitter: str) -> ChannelHealth:
        return self._tracks[emitter].state

    def states(self) -> dict[str, ChannelHealth]:
        return {name: track.state for name, track in self._tracks.items()}

    def miss_rate(self, emitter: str, now: float | None = None) -> float:
        """Missed-slot fraction over the recent ``window_beats`` grid
        slots (0.0 until the emitter's grid is established)."""
        if now is None:
            now = self.controller.sim.now
        return self._miss_rate_for(self._tracks[emitter], now)

    def snr_margin_db(self, emitter: str) -> float:
        """Mean recent detection level above the detector floor."""
        track = self._tracks[emitter]
        if not track.levels:
            return 0.0
        mean_level = sum(track.levels) / len(track.levels)
        return mean_level - self.controller.min_level_db

    # ------------------------------------------------------------------
    # Detection stream
    # ------------------------------------------------------------------

    def _on_detection(self, event) -> None:
        emitter = self._frequency_to_emitter[event.frequency]
        track = self._tracks[emitter]
        if track.origin is None:
            track.origin = event.time
            slot = 0
        else:
            slot = round((event.time - track.origin) / self.period)
        track.heard_slots.add(slot)
        track.last_slot = max(track.last_slot, slot)
        track.last_heard = event.time
        track.levels.append(event.level_db)
        if len(track.heard_slots) > 4 * self.window_beats:
            horizon = track.last_slot - 2 * self.window_beats
            track.heard_slots = {
                kept for kept in track.heard_slots if kept >= horizon
            }

    def _on_window(self, events, time: float) -> None:
        for emitter in sorted(self.emitters):
            track = self._tracks[emitter]
            verdict, miss_rate, margin = self._classify(track, time)
            if verdict is ChannelHealth.HEALTHY:
                if track.state is not ChannelHealth.HEALTHY:
                    # Recovery hysteresis: the clean verdict must hold
                    # for recovery_beats whole beat intervals before the
                    # DEGRADED/DEAD state is allowed to clear.
                    if track.clean_since is None:
                        track.clean_since = time
                    sustained = time - track.clean_since
                    if sustained < (self.recovery_beats - 1) * self.period - 1e-9:
                        continue
            else:
                track.clean_since = None
            if verdict is not track.state:
                transition = HealthTransition(
                    emitter=emitter,
                    time=self.controller.sim.now,
                    previous=track.state,
                    state=verdict,
                    miss_rate=miss_rate,
                    snr_margin_db=margin,
                )
                track.state = verdict
                self.transitions.append(transition)
                self._m_transitions.inc()
                if verdict is ChannelHealth.DEAD:
                    self._m_dead.inc()
                elif verdict is ChannelHealth.DEGRADED:
                    self._m_degraded.inc()
                for callback in self._subscribers:
                    callback(transition)

    def _classify(
        self, track: _EmitterTrack, time: float
    ) -> tuple[ChannelHealth, float, float]:
        dead_after = self.dead_misses * self.period + self.liveness_slack
        if track.origin is None:
            # Never heard: grace of one full dead deadline from start.
            silence = time - self._start_time
            if silence > dead_after + self.period:
                return ChannelHealth.DEAD, 1.0, 0.0
            return ChannelHealth.HEALTHY, 0.0, 0.0
        # Liveness against the inferred grid, not the raw arrival: the
        # reference beat is the newest *slot* time, so a beat detected
        # late in a window cannot push the DEAD deadline out.
        reference = track.origin + track.last_slot * self.period
        silence = time - reference
        miss_rate = self._miss_rate_for(track, time)
        margin = (
            (sum(track.levels) / len(track.levels)
             - self.controller.min_level_db)
            if track.levels else 0.0
        )
        if silence > dead_after:
            return ChannelHealth.DEAD, miss_rate, margin
        if miss_rate >= self.degraded_miss_rate:
            return ChannelHealth.DEGRADED, miss_rate, margin
        if track.levels and margin < self.min_snr_margin_db:
            return ChannelHealth.DEGRADED, miss_rate, margin
        return ChannelHealth.HEALTHY, miss_rate, margin

    def _miss_rate_for(self, track: _EmitterTrack, now: float) -> float:
        if track.origin is None:
            return 0.0
        current_slot = int((now - track.origin) / self.period)
        first_slot = max(0, current_slot - self.window_beats)
        slots = range(first_slot, current_slot)
        if not len(slots):
            return 0.0
        missed = sum(1 for slot in slots if slot not in track.heard_slots)
        return missed / len(slots)
