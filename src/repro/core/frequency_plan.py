"""Frequency planning: who may play what.

Section 3: "we empirically found that a distance of approximately 20 Hz
between frequencies is needed to accurately differentiate them.  Each
switch in our testbed was assigned a unique set of frequencies, so that
we can identify sounds played by different switches at the same time."
And §5: "we could distinguish up to 1000 distinct frequencies played
simultaneously only considering the human-hearable frequency range."

:class:`FrequencyPlan` is the allocator enforcing those rules: a band
of candidate frequencies on a guard-spaced grid, handed out in blocks
to named devices, with reverse lookup so a detected tone can be traced
back to (device, index).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's empirical separation requirement, Hz.
DEFAULT_GUARD_HZ = 20.0

#: Default usable band: above HVAC/fan rumble, inside cheap-speaker
#: response, inside the audible range the paper restricts itself to.
DEFAULT_BAND = (400.0, 7_600.0)


class FrequencyPlanError(ValueError):
    """Raised when an allocation cannot be satisfied."""


@dataclass(frozen=True)
class Allocation:
    """A device's assigned frequency block."""

    device: str
    frequencies: tuple[float, ...]

    def frequency_for(self, index: int) -> float:
        """The device's ``index``-th assigned frequency (for mapping
        symbols — ports, queue bands, flow-hash buckets — to tones)."""
        return self.frequencies[index]

    def index_of(self, frequency: float) -> int:
        """Inverse of :meth:`frequency_for`."""
        return self.frequencies.index(frequency)

    def __len__(self) -> int:
        return len(self.frequencies)


class FrequencyPlan:
    """Guard-spaced frequency allocator over a band.

    Parameters
    ----------
    low_hz, high_hz:
        Band edges (inclusive low, inclusive high).
    guard_hz:
        Minimum spacing between any two allocated frequencies
        (paper: 20 Hz).
    """

    def __init__(
        self,
        low_hz: float = DEFAULT_BAND[0],
        high_hz: float = DEFAULT_BAND[1],
        guard_hz: float = DEFAULT_GUARD_HZ,
    ) -> None:
        if not 0 < low_hz < high_hz:
            raise FrequencyPlanError(f"invalid band [{low_hz}, {high_hz}]")
        if guard_hz <= 0:
            raise FrequencyPlanError(f"guard must be positive, got {guard_hz}")
        self.low_hz = low_hz
        self.high_hz = high_hz
        self.guard_hz = guard_hz
        self._allocations: dict[str, Allocation] = {}
        self._owner_by_frequency: dict[float, str] = {}
        self._next_slot = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total distinct frequencies the band supports at this guard.

        With the full audible band (≈20 Hz–20 kHz) and a 20 Hz guard
        this evaluates to ~1000 — the paper's §5 capacity estimate.
        """
        return int((self.high_hz - self.low_hz) / self.guard_hz) + 1

    @property
    def allocated_count(self) -> int:
        return self._next_slot

    @property
    def remaining(self) -> int:
        return self.capacity - self._next_slot

    def slot_frequency(self, slot: int) -> float:
        """The frequency of grid slot ``slot``."""
        if not 0 <= slot < self.capacity:
            raise FrequencyPlanError(
                f"slot {slot} outside [0, {self.capacity})"
            )
        return self.low_hz + slot * self.guard_hz

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, device: str, count: int) -> Allocation:
        """Assign ``count`` fresh frequencies to ``device``.

        Each device may hold exactly one block (call once per device);
        blocks never overlap, and all frequencies in all blocks are at
        least ``guard_hz`` apart.
        """
        if count < 1:
            raise FrequencyPlanError(f"count must be >= 1, got {count}")
        if device in self._allocations:
            raise FrequencyPlanError(f"device {device!r} already has a block")
        if self._next_slot + count > self.capacity:
            raise FrequencyPlanError(
                f"band exhausted: need {count} slots, {self.remaining} left"
            )
        frequencies = tuple(
            self.slot_frequency(self._next_slot + offset)
            for offset in range(count)
        )
        self._next_slot += count
        allocation = Allocation(device, frequencies)
        self._allocations[device] = allocation
        for frequency in frequencies:
            self._owner_by_frequency[frequency] = device
        return allocation

    def allocation_of(self, device: str) -> Allocation:
        allocation = self._allocations.get(device)
        if allocation is None:
            raise FrequencyPlanError(f"no allocation for device {device!r}")
        return allocation

    def owner_of(self, frequency: float) -> str | None:
        """Which device owns a frequency (None if unallocated)."""
        return self._owner_by_frequency.get(frequency)

    def all_frequencies(self) -> list[float]:
        """Every allocated frequency, ascending — the controller's
        watch list."""
        return sorted(self._owner_by_frequency)

    def validate_disjoint(self) -> None:
        """Invariant check: every pair of allocated frequencies is at
        least ``guard_hz`` apart (used by property tests)."""
        frequencies = self.all_frequencies()
        for first, second in zip(frequencies, frequencies[1:]):
            if second - first < self.guard_hz - 1e-9:
                raise FrequencyPlanError(
                    f"guard violation: {first} and {second} are "
                    f"{second - first} Hz apart"
                )
