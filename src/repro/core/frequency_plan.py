"""Frequency planning: who may play what.

Section 3: "we empirically found that a distance of approximately 20 Hz
between frequencies is needed to accurately differentiate them.  Each
switch in our testbed was assigned a unique set of frequencies, so that
we can identify sounds played by different switches at the same time."
And §5: "we could distinguish up to 1000 distinct frequencies played
simultaneously only considering the human-hearable frequency range."

:class:`FrequencyPlan` is the allocator enforcing those rules: a band
of candidate frequencies on a guard-spaced grid, handed out in blocks
to named devices, with reverse lookup so a detected tone can be traced
back to (device, index).

Plans are **mutable over their lifetime**: devices can
:meth:`~FrequencyPlan.release` their block (freed slots are reused by
later allocations) and the spectrum-agility layer
(:mod:`repro.core.spectrum`) can relocate individual slots away from
interference with :meth:`~FrequencyPlan.apply_moves`.  Every committed
relocation bumps the plan's :attr:`~FrequencyPlan.epoch`, which the
controller stamps onto detections so tones emitted under the previous
plan are still attributed correctly during a migration handover.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable

#: The paper's empirical separation requirement, Hz.
DEFAULT_GUARD_HZ = 20.0

#: Default usable band: above HVAC/fan rumble, inside cheap-speaker
#: response, inside the audible range the paper restricts itself to.
DEFAULT_BAND = (400.0, 7_600.0)


class FrequencyPlanError(ValueError):
    """Raised when an allocation cannot be satisfied."""


def _nearest_within(
    candidates: list[float], frequency: float, tolerance_hz: float
) -> float | None:
    """The candidate nearest ``frequency`` if within ``tolerance_hz``.

    ``candidates`` must be sorted ascending.  Detected frequencies are
    FFT-bin-quantized (and parabolic interpolation adds its own
    epsilon), so reverse lookups must never rely on exact float
    equality with the plan grid.
    """
    if not candidates:
        return None
    index = bisect_left(candidates, frequency)
    best: float | None = None
    for neighbour in candidates[max(0, index - 1):index + 1]:
        if best is None or abs(neighbour - frequency) < abs(best - frequency):
            best = neighbour
    if best is not None and abs(best - frequency) <= tolerance_hz:
        return best
    return None


@dataclass(frozen=True)
class Allocation:
    """A device's assigned frequency block."""

    device: str
    frequencies: tuple[float, ...]

    def frequency_for(self, index: int) -> float:
        """The device's ``index``-th assigned frequency (for mapping
        symbols — ports, queue bands, flow-hash buckets — to tones)."""
        return self.frequencies[index]

    def index_of(self, frequency: float,
                 tolerance_hz: float = DEFAULT_GUARD_HZ / 2) -> int:
        """Inverse of :meth:`frequency_for`.

        The lookup is tolerance-based (default: half the guard band):
        a detected tone arrives FFT-bin-quantized, so ``frequency`` may
        differ from the assigned value by up to a bin width.  Raises
        :class:`ValueError` when nothing is within tolerance, like the
        exact ``list.index`` it replaces.
        """
        ordered = sorted(self.frequencies)
        match = _nearest_within(ordered, float(frequency), tolerance_hz)
        if match is None:
            raise ValueError(
                f"{frequency} Hz is not within {tolerance_hz} Hz of any "
                f"frequency allocated to {self.device!r}"
            )
        return self.frequencies.index(match)

    def moved(self, moves: dict[int, float]) -> "Allocation":
        """A copy with the indexed frequencies replaced (same symbol
        order, new tones) — how a migration rebinds a block."""
        frequencies = list(self.frequencies)
        for index, frequency in moves.items():
            frequencies[index] = float(frequency)
        return Allocation(self.device, tuple(frequencies))

    def __len__(self) -> int:
        return len(self.frequencies)


class FrequencyPlan:
    """Guard-spaced frequency allocator over a band.

    Parameters
    ----------
    low_hz, high_hz:
        Band edges (inclusive low, inclusive high).
    guard_hz:
        Minimum spacing between any two allocated frequencies
        (paper: 20 Hz).
    """

    def __init__(
        self,
        low_hz: float = DEFAULT_BAND[0],
        high_hz: float = DEFAULT_BAND[1],
        guard_hz: float = DEFAULT_GUARD_HZ,
    ) -> None:
        if not 0 < low_hz < high_hz:
            raise FrequencyPlanError(f"invalid band [{low_hz}, {high_hz}]")
        if guard_hz <= 0:
            raise FrequencyPlanError(f"guard must be positive, got {guard_hz}")
        self.low_hz = low_hz
        self.high_hz = high_hz
        self.guard_hz = guard_hz
        #: Plan generation, bumped by every committed migration
        #: (:meth:`apply_moves`).  Epoch 0 is the initial static plan.
        self.epoch = 0
        self._allocations: dict[str, Allocation] = {}
        self._owner_by_frequency: dict[float, str] = {}
        self._slot_owner: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total distinct frequencies the band supports at this guard.

        With the full audible band (≈20 Hz–20 kHz) and a 20 Hz guard
        this evaluates to ~1000 — the paper's §5 capacity estimate.
        """
        return int((self.high_hz - self.low_hz) / self.guard_hz) + 1

    @property
    def allocated_count(self) -> int:
        return len(self._slot_owner)

    @property
    def remaining(self) -> int:
        return self.capacity - self.allocated_count

    def slot_frequency(self, slot: int) -> float:
        """The frequency of grid slot ``slot``."""
        if not 0 <= slot < self.capacity:
            raise FrequencyPlanError(
                f"slot {slot} outside [0, {self.capacity})"
            )
        return self.low_hz + slot * self.guard_hz

    def slot_of(self, frequency: float) -> int:
        """The grid slot whose centre is nearest ``frequency``."""
        slot = int(round((float(frequency) - self.low_hz) / self.guard_hz))
        if not 0 <= slot < self.capacity:
            raise FrequencyPlanError(
                f"{frequency} Hz is outside the plan band "
                f"[{self.low_hz}, {self.high_hz}]"
            )
        return slot

    def is_slot_free(self, slot: int) -> bool:
        """Whether grid slot ``slot`` is currently unallocated."""
        if not 0 <= slot < self.capacity:
            raise FrequencyPlanError(
                f"slot {slot} outside [0, {self.capacity})"
            )
        return slot not in self._slot_owner

    def free_slots(self) -> list[int]:
        """Every unallocated grid slot, ascending."""
        return [slot for slot in range(self.capacity)
                if slot not in self._slot_owner]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, device: str, count: int) -> Allocation:
        """Assign ``count`` fresh frequencies to ``device``.

        Each device may hold exactly one block (call once per device,
        or :meth:`release` first); blocks never overlap, and all
        frequencies in all blocks are at least ``guard_hz`` apart.
        Slots freed by :meth:`release` are reused, lowest first.
        """
        if count < 1:
            raise FrequencyPlanError(f"count must be >= 1, got {count}")
        if device in self._allocations:
            raise FrequencyPlanError(f"device {device!r} already has a block")
        if count > self.remaining:
            raise FrequencyPlanError(
                f"band exhausted: need {count} slots, {self.remaining} left"
            )
        slots = []
        slot = 0
        while len(slots) < count:
            if slot not in self._slot_owner:
                slots.append(slot)
            slot += 1
        frequencies = tuple(self.slot_frequency(taken) for taken in slots)
        allocation = Allocation(device, frequencies)
        self._allocations[device] = allocation
        for taken, frequency in zip(slots, frequencies):
            self._slot_owner[taken] = device
            self._owner_by_frequency[frequency] = device
        return allocation

    def release(self, device: str) -> None:
        """Return ``device``'s block to the free pool.

        The freed slots become eligible for later :meth:`allocate` and
        migration (:meth:`apply_moves`) calls.  Releasing an unknown
        device raises :class:`FrequencyPlanError`.
        """
        allocation = self._allocations.pop(device, None)
        if allocation is None:
            raise FrequencyPlanError(f"no allocation for device {device!r}")
        for frequency in allocation.frequencies:
            self._owner_by_frequency.pop(frequency, None)
            self._slot_owner.pop(self.slot_of(frequency), None)

    def allocation_of(self, device: str) -> Allocation:
        allocation = self._allocations.get(device)
        if allocation is None:
            raise FrequencyPlanError(f"no allocation for device {device!r}")
        return allocation

    def devices(self) -> list[str]:
        """Every device holding a block, sorted."""
        return sorted(self._allocations)

    def owner_of(self, frequency: float,
                 tolerance_hz: float | None = None) -> str | None:
        """Which device owns a frequency (None if unallocated).

        Lookup is tolerance-based — default half the guard band — so a
        detected, FFT-bin-quantized frequency still resolves to its
        plan entry.  Pass ``tolerance_hz=0.0`` for the old exact-match
        behaviour.
        """
        owner = self._owner_by_frequency.get(float(frequency))
        if owner is not None:
            return owner
        if tolerance_hz is None:
            tolerance_hz = self.guard_hz / 2.0
        if tolerance_hz <= 0.0:
            return None
        match = _nearest_within(
            sorted(self._owner_by_frequency), float(frequency), tolerance_hz
        )
        return self._owner_by_frequency[match] if match is not None else None

    def all_frequencies(self) -> list[float]:
        """Every allocated frequency, ascending — the controller's
        watch list."""
        return sorted(self._owner_by_frequency)

    # ------------------------------------------------------------------
    # Migration (the spectrum-agility replanner's commit primitive)
    # ------------------------------------------------------------------

    def apply_moves(
        self, moves: Iterable[tuple[str, int, int]]
    ) -> dict[str, Allocation]:
        """Atomically relocate allocation entries to new grid slots.

        ``moves`` is an iterable of ``(device, index, new_slot)``:
        the ``index``-th frequency of ``device``'s block moves to
        ``new_slot``.  Old slots are vacated first, so moves may target
        slots other moves free in the same batch.  The whole batch is
        validated before any state changes; on success the plan
        :attr:`epoch` is bumped and the fresh per-device allocations
        are returned.
        """
        batch = [(device, index, new_slot) for device, index, new_slot in moves]
        if not batch:
            return {}
        vacated: set[int] = set()
        claimed: set[int] = set()
        per_device: dict[str, dict[int, float]] = {}
        for device, index, new_slot in batch:
            allocation = self.allocation_of(device)
            if not 0 <= index < len(allocation):
                raise FrequencyPlanError(
                    f"move index {index} outside {device!r}'s block"
                )
            if not 0 <= new_slot < self.capacity:
                raise FrequencyPlanError(
                    f"slot {new_slot} outside [0, {self.capacity})"
                )
            if new_slot in claimed:
                raise FrequencyPlanError(
                    f"slot {new_slot} claimed twice in one migration"
                )
            old_slot = self.slot_of(allocation.frequency_for(index))
            vacated.add(old_slot)
            claimed.add(new_slot)
            per_device.setdefault(device, {})[index] = (
                self.slot_frequency(new_slot)
            )
        for slot in claimed:
            if slot in self._slot_owner and slot not in vacated:
                raise FrequencyPlanError(
                    f"slot {slot} is already owned by "
                    f"{self._slot_owner[slot]!r}"
                )
        # Commit: vacate, then claim, then rebuild allocations.
        for device, index, new_slot in batch:
            allocation = self._allocations[device]
            old_frequency = allocation.frequency_for(index)
            self._owner_by_frequency.pop(old_frequency, None)
            self._slot_owner.pop(self.slot_of(old_frequency), None)
        fresh: dict[str, Allocation] = {}
        for device, index_moves in per_device.items():
            allocation = self._allocations[device].moved(index_moves)
            self._allocations[device] = allocation
            fresh[device] = allocation
        for device, index, new_slot in batch:
            frequency = self.slot_frequency(new_slot)
            self._slot_owner[new_slot] = device
            self._owner_by_frequency[frequency] = device
        self.epoch += 1
        return fresh

    def validate_disjoint(self) -> None:
        """Invariant check: every pair of allocated frequencies is at
        least ``guard_hz`` apart (used by property tests)."""
        frequencies = self.all_frequencies()
        for first, second in zip(frequencies, frequencies[1:]):
            if second - first < self.guard_hz - 1e-9:
                raise FrequencyPlanError(
                    f"guard violation: {first} and {second} are "
                    f"{second - first} Hz apart"
                )
