"""The Music Protocol (MP): how a switch asks its speaker for a sound.

From §3: "We modified the firmware of the Zodiac FX switches, so that
when we want the switch to play a sound, a Music Protocol (MP) message
is sent to the Pi.  The MP payload contains the frequency at which we
want to play the sound, its duration and intensity (volume)."

This module defines that message and its wire format.  The encoding is
deliberately tiny — the Zodiac FX has 120 KB of RAM and the paper had
to use the raw LwIP API — so the payload is 12 bytes, fixed layout,
with an XOR checksum:

====== ======= ========================================
offset size    field
====== ======= ========================================
0      2       magic ``b"MP"``
2      1       version (currently 1)
3      4       frequency, centihertz, unsigned big-endian
7      2       duration, milliseconds, unsigned big-endian
9      2       intensity, centi-dB SPL, unsigned big-endian
11     1       XOR checksum of bytes 0..10
====== ======= ========================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..audio.synth import ToneSpec

MAGIC = b"MP"
VERSION = 1
WIRE_SIZE = 12

_STRUCT = struct.Struct("!2sBIHH")

#: Field limits implied by the wire format.
MAX_FREQUENCY_HZ = (2**32 - 1) / 100.0
MAX_DURATION_S = (2**16 - 1) / 1000.0
MAX_INTENSITY_DB = (2**16 - 1) / 100.0


class MusicProtocolError(ValueError):
    """Raised when an MP message cannot be encoded or decoded."""


@dataclass(frozen=True)
class MusicProtocolMessage:
    """A request to play one tone.

    Attributes
    ----------
    frequency:
        Tone frequency, Hz.
    duration:
        Tone duration, seconds.
    intensity_db:
        Emission level, dB SPL.
    """

    frequency: float
    duration: float
    intensity_db: float = 60.0

    def __post_init__(self) -> None:
        if not 0 < self.frequency <= MAX_FREQUENCY_HZ:
            raise MusicProtocolError(
                f"frequency {self.frequency} outside (0, {MAX_FREQUENCY_HZ}]"
            )
        if not 0 < self.duration <= MAX_DURATION_S:
            raise MusicProtocolError(
                f"duration {self.duration} outside (0, {MAX_DURATION_S}]"
            )
        if not 0 <= self.intensity_db <= MAX_INTENSITY_DB:
            raise MusicProtocolError(
                f"intensity {self.intensity_db} outside [0, {MAX_INTENSITY_DB}]"
            )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def marshal(self) -> bytes:
        """Encode to the 12-byte wire format."""
        body = _STRUCT.pack(
            MAGIC,
            VERSION,
            int(round(self.frequency * 100)),
            int(round(self.duration * 1000)),
            int(round(self.intensity_db * 100)),
        )
        return body + bytes([_xor(body)])

    @classmethod
    def unmarshal(cls, wire: bytes) -> "MusicProtocolMessage":
        """Decode a 12-byte MP message, validating magic, version and
        checksum.

        Any malformed input — wrong type, truncation, padding, flipped
        bits, stale versions — raises :class:`MusicProtocolError`; a
        receiver parsing untrusted frames never sees a bare
        ``struct.error`` or ``ValueError``.
        """
        if not isinstance(wire, (bytes, bytearray, memoryview)):
            raise MusicProtocolError(
                f"MP message must be bytes, got {type(wire).__name__}"
            )
        wire = bytes(wire)
        if len(wire) != WIRE_SIZE:
            raise MusicProtocolError(
                f"MP message must be {WIRE_SIZE} bytes, got {len(wire)}"
            )
        body, checksum = wire[:-1], wire[-1]
        if _xor(body) != checksum:
            raise MusicProtocolError("MP checksum mismatch")
        try:
            magic, version, centi_hz, milli_s, centi_db = _STRUCT.unpack(body)
        except struct.error as exc:  # length-checked; belt and braces
            raise MusicProtocolError(f"undecodable MP body: {exc}") from exc
        if magic != MAGIC:
            raise MusicProtocolError(f"bad magic {magic!r}")
        if version != VERSION:
            raise MusicProtocolError(f"unsupported MP version {version}")
        if centi_hz == 0:
            raise MusicProtocolError("frequency must be positive")
        if milli_s == 0:
            raise MusicProtocolError("duration must be positive")
        return cls(centi_hz / 100.0, milli_s / 1000.0, centi_db / 100.0)

    #: Receiver-facing alias: the Pi "decodes" frames off the wire.
    decode = unmarshal

    # ------------------------------------------------------------------
    # Bridges
    # ------------------------------------------------------------------

    def to_tone_spec(self) -> ToneSpec:
        """The tone this message asks the speaker to play."""
        return ToneSpec(self.frequency, self.duration, self.intensity_db)

    @classmethod
    def from_tone_spec(cls, spec: ToneSpec) -> "MusicProtocolMessage":
        return cls(spec.frequency, spec.duration, spec.level_db)


def _xor(data: bytes) -> int:
    checksum = 0
    for byte in data:
        checksum ^= byte
    return checksum
