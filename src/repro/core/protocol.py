"""The Music Protocol (MP): how a switch asks its speaker for a sound.

From §3: "We modified the firmware of the Zodiac FX switches, so that
when we want the switch to play a sound, a Music Protocol (MP) message
is sent to the Pi.  The MP payload contains the frequency at which we
want to play the sound, its duration and intensity (volume)."

This module defines that message and its wire format.  The encoding is
deliberately tiny — the Zodiac FX has 120 KB of RAM and the paper had
to use the raw LwIP API — so the payload is 12 bytes, fixed layout,
with an XOR checksum:

====== ======= ========================================
offset size    field
====== ======= ========================================
0      2       magic ``b"MP"``
2      1       version (currently 1)
3      4       frequency, centihertz, unsigned big-endian
7      2       duration, milliseconds, unsigned big-endian
9      2       intensity, centi-dB SPL, unsigned big-endian
11     1       XOR checksum of bytes 0..10
====== ======= ========================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..audio.synth import ToneSpec

MAGIC = b"MP"
VERSION = 1
WIRE_SIZE = 12

_STRUCT = struct.Struct("!2sBIHH")

#: Field limits implied by the wire format.
MAX_FREQUENCY_HZ = (2**32 - 1) / 100.0
MAX_DURATION_S = (2**16 - 1) / 1000.0
MAX_INTENSITY_DB = (2**16 - 1) / 100.0


class MusicProtocolError(ValueError):
    """Raised when an MP message cannot be encoded or decoded."""


@dataclass(frozen=True)
class MusicProtocolMessage:
    """A request to play one tone.

    Attributes
    ----------
    frequency:
        Tone frequency, Hz.
    duration:
        Tone duration, seconds.
    intensity_db:
        Emission level, dB SPL.
    """

    frequency: float
    duration: float
    intensity_db: float = 60.0

    def __post_init__(self) -> None:
        if not 0 < self.frequency <= MAX_FREQUENCY_HZ:
            raise MusicProtocolError(
                f"frequency {self.frequency} outside (0, {MAX_FREQUENCY_HZ}]"
            )
        if not 0 < self.duration <= MAX_DURATION_S:
            raise MusicProtocolError(
                f"duration {self.duration} outside (0, {MAX_DURATION_S}]"
            )
        if not 0 <= self.intensity_db <= MAX_INTENSITY_DB:
            raise MusicProtocolError(
                f"intensity {self.intensity_db} outside [0, {MAX_INTENSITY_DB}]"
            )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def marshal(self) -> bytes:
        """Encode to the 12-byte wire format."""
        body = _STRUCT.pack(
            MAGIC,
            VERSION,
            int(round(self.frequency * 100)),
            int(round(self.duration * 1000)),
            int(round(self.intensity_db * 100)),
        )
        return body + bytes([_xor(body)])

    @classmethod
    def unmarshal(cls, wire: bytes) -> "MusicProtocolMessage":
        """Decode a 12-byte MP message, validating magic, version and
        checksum.

        Any malformed input — wrong type, truncation, padding, flipped
        bits, stale versions — raises :class:`MusicProtocolError`; a
        receiver parsing untrusted frames never sees a bare
        ``struct.error`` or ``ValueError``.
        """
        if not isinstance(wire, (bytes, bytearray, memoryview)):
            raise MusicProtocolError(
                f"MP message must be bytes, got {type(wire).__name__}"
            )
        wire = bytes(wire)
        if len(wire) != WIRE_SIZE:
            raise MusicProtocolError(
                f"MP message must be {WIRE_SIZE} bytes, got {len(wire)}"
            )
        body, checksum = wire[:-1], wire[-1]
        if _xor(body) != checksum:
            raise MusicProtocolError("MP checksum mismatch")
        try:
            magic, version, centi_hz, milli_s, centi_db = _STRUCT.unpack(body)
        except struct.error as exc:  # length-checked; belt and braces
            raise MusicProtocolError(f"undecodable MP body: {exc}") from exc
        if magic != MAGIC:
            raise MusicProtocolError(f"bad magic {magic!r}")
        if version != VERSION:
            raise MusicProtocolError(f"unsupported MP version {version}")
        if centi_hz == 0:
            raise MusicProtocolError("frequency must be positive")
        if milli_s == 0:
            raise MusicProtocolError("duration must be positive")
        return cls(centi_hz / 100.0, milli_s / 1000.0, centi_db / 100.0)

    #: Receiver-facing alias: the Pi "decodes" frames off the wire.
    decode = unmarshal

    # ------------------------------------------------------------------
    # Bridges
    # ------------------------------------------------------------------

    def to_tone_spec(self) -> ToneSpec:
        """The tone this message asks the speaker to play."""
        return ToneSpec(self.frequency, self.duration, self.intensity_db)

    @classmethod
    def from_tone_spec(cls, spec: ToneSpec) -> "MusicProtocolMessage":
        return cls(spec.frequency, spec.duration, spec.level_db)


def _xor(data: bytes) -> int:
    checksum = 0
    for byte in data:
        checksum ^= byte
    return checksum


# ----------------------------------------------------------------------
# Plan control (PC): two-phase frequency-plan migration
# ----------------------------------------------------------------------

PLAN_MAGIC = b"PC"
PLAN_VERSION = 1

#: Two-phase migration phases.  PREPARE stages the moves on the Pi,
#: COMMIT activates them atomically, ABORT discards a staged prepare
#: (rollback when some participant missed its deadline).
PLAN_PREPARE = 1
PLAN_COMMIT = 2
PLAN_ABORT = 3

_PLAN_PHASES = (PLAN_PREPARE, PLAN_COMMIT, PLAN_ABORT)

_PLAN_HEADER = struct.Struct("!2sBBHB")   # magic, version, phase, epoch, count
_PLAN_MOVE = struct.Struct("!BII")        # index, old centi-Hz, new centi-Hz

#: Per-message move-list bound (count is a u8; plans are small anyway).
MAX_PLAN_MOVES = 255


@dataclass(frozen=True)
class PlanControlMessage:
    """One phase of a two-phase frequency-plan migration.

    Rides the same ARQ envelope as :class:`MusicProtocolMessage` — the
    sender frames it with ``b"MD" + seq`` and the Pi acknowledges it
    with ``b"MA" + seq`` — but is variable-length:

    ====== ======= ========================================
    offset size    field
    ====== ======= ========================================
    0      2       magic ``b"PC"``
    2      1       version (currently 1)
    3      1       phase (1=PREPARE, 2=COMMIT, 3=ABORT)
    4      2       plan epoch, unsigned big-endian
    6      1       move count *n*
    7      9·n     moves: index u8, old centi-Hz u32, new centi-Hz u32
    7+9n   1       XOR checksum of all preceding bytes
    ====== ======= ========================================

    Attributes
    ----------
    phase:
        :data:`PLAN_PREPARE`, :data:`PLAN_COMMIT` or :data:`PLAN_ABORT`.
    epoch:
        The plan epoch this migration creates.  COMMIT/ABORT must quote
        the same epoch as the PREPARE they resolve.
    moves:
        ``(index, old_hz, new_hz)`` per relocated allocation entry —
        the device-local tone index and its frequencies before/after.
        Empty for ABORT (and allowed empty for COMMIT).
    """

    phase: int
    epoch: int
    moves: tuple[tuple[int, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.phase not in _PLAN_PHASES:
            raise MusicProtocolError(f"unknown plan phase {self.phase}")
        if not 0 <= self.epoch < 2**16:
            raise MusicProtocolError(f"epoch {self.epoch} outside [0, 65535]")
        if len(self.moves) > MAX_PLAN_MOVES:
            raise MusicProtocolError(
                f"{len(self.moves)} moves exceeds {MAX_PLAN_MOVES}"
            )
        for index, old_hz, new_hz in self.moves:
            if not 0 <= index < 256:
                raise MusicProtocolError(f"move index {index} outside [0, 255]")
            for hz in (old_hz, new_hz):
                if not 0 < hz <= MAX_FREQUENCY_HZ:
                    raise MusicProtocolError(
                        f"frequency {hz} outside (0, {MAX_FREQUENCY_HZ}]"
                    )

    def marshal(self) -> bytes:
        body = _PLAN_HEADER.pack(
            PLAN_MAGIC, PLAN_VERSION, self.phase, self.epoch, len(self.moves)
        )
        for index, old_hz, new_hz in self.moves:
            body += _PLAN_MOVE.pack(
                index, int(round(old_hz * 100)), int(round(new_hz * 100))
            )
        return body + bytes([_xor(body)])

    @classmethod
    def unmarshal(cls, wire: bytes) -> "PlanControlMessage":
        """Decode a plan-control message, validating magic, version,
        length, and checksum; malformed input raises
        :class:`MusicProtocolError`."""
        if not isinstance(wire, (bytes, bytearray, memoryview)):
            raise MusicProtocolError(
                f"PC message must be bytes, got {type(wire).__name__}"
            )
        wire = bytes(wire)
        if len(wire) < _PLAN_HEADER.size + 1:
            raise MusicProtocolError(
                f"PC message too short ({len(wire)} bytes)"
            )
        body, checksum = wire[:-1], wire[-1]
        if _xor(body) != checksum:
            raise MusicProtocolError("PC checksum mismatch")
        magic, version, phase, epoch, count = _PLAN_HEADER.unpack_from(body)
        if magic != PLAN_MAGIC:
            raise MusicProtocolError(f"bad magic {magic!r}")
        if version != PLAN_VERSION:
            raise MusicProtocolError(f"unsupported PC version {version}")
        expected = _PLAN_HEADER.size + count * _PLAN_MOVE.size
        if len(body) != expected:
            raise MusicProtocolError(
                f"PC body is {len(body)} bytes, expected {expected} "
                f"for {count} moves"
            )
        moves = []
        for slot in range(count):
            index, old_chz, new_chz = _PLAN_MOVE.unpack_from(
                body, _PLAN_HEADER.size + slot * _PLAN_MOVE.size
            )
            if old_chz == 0 or new_chz == 0:
                raise MusicProtocolError("move frequencies must be positive")
            moves.append((index, old_chz / 100.0, new_chz / 100.0))
        return cls(phase, epoch, tuple(moves))

    decode = unmarshal
