"""ARQ for the Music Protocol: repetition + acknowledgement + deadline.

ChirpCast-style acoustic links (arXiv:1508.07099) only become reliable
with acknowledgement and redundancy; the same holds for MDN's two lossy
hops.  This module adds a stop-and-wait-per-frame ARQ mode to both:

* :class:`MpArqSender` — the **wire** hop (switch → Pi).  Each MP
  message is framed with a 16-bit sequence number
  (``b"MD" + seq + wire``); the Pi acknowledges a cleanly-unmarshalled
  frame with ``b"MA" + seq`` on :data:`~repro.core.pi.MP_ACK_PORT`.
  Unacknowledged frames are retransmitted with exponential backoff
  until a per-frame delivery deadline expires.  The legacy bare
  12-byte path is untouched — ARQ is opt-in per sender.
* :class:`ToneArqSender` / :class:`AckToneResponder` — the **air** hop,
  literal tone repetition + ACK-tone: the sender plays its data tone,
  listens for the controller's ACK tone, and replays with backoff
  until acknowledged or the deadline passes.

Both senders share :class:`ArqConfig`; all timing is simulation time,
so every retransmission schedule is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..audio.detector import DEFAULT_TOLERANCE_HZ, FrequencyDetector
from ..audio.devices import Microphone
from ..infra import CircuitBreaker, RetryPolicy, RetrySchedule, TokenBucket
from ..net.packet import Packet
from ..net.sim import Simulator
from .agent import MusicAgent
from .pi import ARQ_ACK_MAGIC, ARQ_ACK_SIZE, ARQ_DATA_MAGIC, MP_ACK_PORT, PiBridge
from .protocol import MusicProtocolMessage


@dataclass(frozen=True)
class ArqConfig:
    """Retransmission policy shared by the wire and air ARQ modes.

    The first retransmission waits ``initial_timeout``; each subsequent
    wait doubles (``backoff``) up to ``max_timeout``.  A frame still
    unacknowledged at ``deadline`` after first transmission is dropped
    and counted as expired — management traffic goes stale, it must
    not queue forever.

    Validation and the retransmission timeline both delegate to
    :class:`repro.infra.RetryPolicy`; ARQ is one consumer of the
    repo-wide retry policy, not a private copy of it.
    """

    initial_timeout: float = 0.05
    backoff: float = 2.0
    max_timeout: float = 0.5
    deadline: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        self.policy()  # RetryPolicy owns the validation rules

    def policy(self) -> RetryPolicy:
        """This config as a :class:`repro.infra.RetryPolicy`."""
        return RetryPolicy(self.initial_timeout, self.backoff,
                           self.max_timeout, self.deadline, self.jitter)

    def schedule(self, start: float,
                 seed: int | None = None) -> RetrySchedule:
        """A fresh retry schedule anchored at ``start``."""
        return self.policy().schedule(start, seed)


@dataclass
class _PendingFrame:
    """Book-keeping for one in-flight ARQ frame.

    Retry timers carry the frame object itself and identity-check it
    against ``_pending`` before acting, so a sequence number reused
    after 16-bit wraparound can never be retransmitted or expired by a
    stale timer belonging to the displaced frame.
    """

    wire: bytes
    first_sent: float
    schedule: RetrySchedule
    attempts: int = 0
    #: Whether the breaker was already told this frame looks lost
    #: (early-suspect signal); prevents double-counting at expiry.
    suspected: bool = False
    #: Optional delivery callbacks — ``on_ack(sequence, latency)`` when
    #: the frame is acknowledged, ``on_expire(sequence)`` when its
    #: deadline passes unacknowledged.  The migration protocol uses
    #: these to learn which participants are PREPAREd.
    on_ack: object = None
    on_expire: object = None

    @property
    def deadline(self) -> float:
        return self.schedule.deadline


@dataclass
class ArqStats:
    """Delivery summary for one sender."""

    sent: int
    acked: int
    retransmits: int
    expired: int
    delivery_rate: float
    mean_latency: float
    #: Sends refused immediately by an OPEN circuit breaker.
    fast_failed: int = 0
    #: Sends refused by the admission token bucket.
    shed: int = 0


class MpArqSender:
    """Reliable MP delivery over a :class:`~repro.core.pi.PiBridge`.

    Intercepts ACK frames with a switch receive hook (the Pi port is
    outside the flow table, so the hook is the only consumer); pending
    frames retransmit on a per-frame timer with exponential backoff
    until acknowledged or past the deadline.

    Parameters
    ----------
    breaker:
        Optional :class:`repro.infra.CircuitBreaker` guarding this
        link.  Sends are fast-failed while it is OPEN; ACKs feed it
        successes; a frame reaching ``suspect_after`` unacknowledged
        transmissions (or its deadline) feeds it a failure, so a wedged
        Pi trips the breaker long before every frame rides out its full
        delivery deadline.
    admission:
        Optional :class:`repro.infra.TokenBucket`; sends beyond its
        rate are shed with a counted drop instead of growing
        ``_pending`` without bound.
    suspect_after:
        Unacknowledged transmissions after which a frame is reported to
        the breaker as an early failure (the deadline still governs the
        frame's own fate).
    """

    def __init__(self, bridge: PiBridge,
                 config: ArqConfig | None = None,
                 breaker: CircuitBreaker | None = None,
                 admission: TokenBucket | None = None,
                 suspect_after: int = 2) -> None:
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        self.sim = bridge.sim
        self.bridge = bridge
        self.config = config or ArqConfig()
        self.breaker = breaker
        self.admission = admission
        self.suspect_after = suspect_after
        self._pending: dict[int, _PendingFrame] = {}
        self._next_sequence = 0
        self.acked_log: list[tuple[int, float]] = []   # (seq, latency)
        self.expired_log: list[int] = []
        self.peak_in_flight = 0
        # Per-instance delivery tallies: stats() must stay correct with
        # several senders alive (e.g. one per Pi bridge), so it never
        # reads the shared obs namespace.
        self._sent = 0
        self._acked = 0
        self._retransmits = 0
        self._expired = 0
        self._fast_failed = 0
        self._shed = 0
        self._m_sent = obs.counter("arq.mp_frames_sent")
        self._m_retransmits = obs.counter("arq.mp_retransmits")
        self._m_acked = obs.counter("arq.mp_frames_acked")
        self._m_expired = obs.counter("arq.mp_frames_expired")
        self._m_fast_failed = obs.counter("arq.mp_fast_failed")
        self._m_shed = obs.counter("arq.mp_shed")
        bridge.switch.on_receive(self._on_switch_packet)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, message: MusicProtocolMessage) -> int:
        """Frame, transmit, and track one MP message; returns its
        sequence number."""
        return self.send_wire(message.marshal())

    def send_wire(self, payload: bytes, on_ack=None, on_expire=None) -> int:
        """Frame, transmit, and track one raw payload under the ARQ
        envelope (``b"MD" + seq + payload``); returns its sequence
        number.  ``on_ack(sequence, latency)`` / ``on_expire(sequence)``
        fire when the frame is acknowledged or its deadline passes.

        Sends refused by the admission bucket or an OPEN breaker return
        ``-1`` and fire ``on_expire(-1)`` on the next event-loop turn —
        the caller learns immediately instead of after the deadline."""
        now = self.sim.now
        if self.admission is not None and not self.admission.admit(now):
            self._shed += 1
            self._m_shed.inc()
            if on_expire is not None:
                self.sim.schedule_at(now, on_expire, -1)
            return -1
        if self.breaker is not None and not self.breaker.allow(now):
            self._fast_failed += 1
            self._m_fast_failed.inc()
            if on_expire is not None:
                self.sim.schedule_at(now, on_expire, -1)
            return -1
        sequence = self._next_sequence
        self._next_sequence = (self._next_sequence + 1) % 65_536
        stale = self._pending.pop(sequence, None)
        if stale is not None:
            # 16-bit wraparound landed on a frame still in flight: it
            # can no longer be acknowledged unambiguously, so expire it
            # now; its timers die on the identity guard.
            self._count_expired(sequence, stale)
        wire = ARQ_DATA_MAGIC + sequence.to_bytes(2, "big") + payload
        frame = _PendingFrame(
            wire=wire,
            first_sent=now,
            schedule=self.config.schedule(now, seed=sequence),
            on_ack=on_ack,
            on_expire=on_expire,
        )
        self._pending[sequence] = frame
        if len(self._pending) > self.peak_in_flight:
            self.peak_in_flight = len(self._pending)
        self._sent += 1
        self._m_sent.inc()
        self._transmit(sequence, frame)
        return sequence

    def _transmit(self, sequence: int, frame: _PendingFrame) -> None:
        if self._pending.get(sequence) is not frame:
            return  # acknowledged, expired, or displaced by wraparound
        frame.attempts += 1
        if frame.attempts > 1:
            self._retransmits += 1
            self._m_retransmits.inc()
        if (self.breaker is not None and not frame.suspected
                and frame.attempts > self.suspect_after):
            # Early-failure signal: several transmissions, no ACK.
            frame.suspected = True
            self.breaker.record_failure(self.sim.now)
        packet = Packet(
            self.bridge._flow,
            size_bytes=len(frame.wire) + 42,
            created_at=self.sim.now,
            is_management=True,
            payload=frame.wire,
        )
        self.bridge.mp_sent.increment()
        self.bridge.switch.transmit(packet, self.bridge.pi_port)
        retry_at = frame.schedule.next_retry(self.sim.now)
        if retry_at is not None:
            self.sim.schedule_at(retry_at, self._transmit, sequence, frame)
        else:
            self.sim.schedule_at(frame.deadline, self._expire,
                                 sequence, frame)

    def _expire(self, sequence: int, frame: _PendingFrame) -> None:
        if self._pending.get(sequence) is not frame:
            return  # acknowledged meanwhile, or displaced by wraparound
        del self._pending[sequence]
        self._count_expired(sequence, frame)

    def _count_expired(self, sequence: int, frame: _PendingFrame) -> None:
        self._expired += 1
        self._m_expired.inc()
        self.expired_log.append(sequence)
        if self.breaker is not None and not frame.suspected:
            self.breaker.record_failure(self.sim.now)
        if frame.on_expire is not None:
            frame.on_expire(sequence)

    # ------------------------------------------------------------------
    # ACK path
    # ------------------------------------------------------------------

    def _on_switch_packet(self, packet: Packet, in_port: int) -> None:
        if (in_port != self.bridge.pi_port
                or packet.flow.dst_port != MP_ACK_PORT):
            return
        payload = packet.payload
        if len(payload) != ARQ_ACK_SIZE or payload[:2] != ARQ_ACK_MAGIC:
            return
        sequence = int.from_bytes(payload[2:4], "big")
        frame = self._pending.pop(sequence, None)
        if frame is None:
            return  # duplicate ACK of a retransmitted frame
        self._acked += 1
        self._m_acked.inc()
        if self.breaker is not None:
            self.breaker.record_success(self.sim.now)
        latency = self.sim.now - frame.first_sent
        self.acked_log.append((sequence, latency))
        if frame.on_ack is not None:
            frame.on_ack(sequence, latency)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def stats(self) -> ArqStats:
        latencies = [latency for _seq, latency in self.acked_log]
        return ArqStats(
            sent=self._sent,
            acked=self._acked,
            retransmits=self._retransmits,
            expired=self._expired,
            delivery_rate=self._acked / self._sent if self._sent else 0.0,
            mean_latency=(sum(latencies) / len(latencies)
                          if latencies else float("nan")),
            fast_failed=self._fast_failed,
            shed=self._shed,
        )


class AckToneResponder:
    """Controller-side half of the acoustic ARQ: answer every data-tone
    onset with an ACK tone from the controller's own speaker.

    ``ack_map`` maps each watched data frequency to the ACK frequency
    the responder answers it with.  Must be constructed before
    ``controller.start()`` (it subscribes via ``watch``).

    Onset frequencies resolve against the map within ``tolerance_hz``
    (guard/2, like the detector and the frequency plan) rather than by
    exact float equality — a bin-quantized or plan-migrated onset must
    never crash the responder.  Unresolvable onsets are counted in
    ``acks_skipped``; :meth:`rebind` follows plan migrations.
    """

    def __init__(self, controller, agent: MusicAgent,
                 ack_map: dict[float, float],
                 tone_duration: float = 0.05,
                 tone_level_db: float = 72.0,
                 tolerance_hz: float = DEFAULT_TOLERANCE_HZ) -> None:
        if not ack_map:
            raise ValueError("ack_map must not be empty")
        self.agent = agent
        self.ack_map = {float(freq): ack for freq, ack in ack_map.items()}
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self.tolerance_hz = tolerance_hz
        self.acks_played = 0
        self.acks_skipped = 0
        controller.watch(list(self.ack_map), on_onset=self._on_onset)

    def rebind(self, old_frequency: float, new_frequency: float) -> None:
        """Follow a plan migration: answer ``new_frequency`` with the
        ACK tone previously bound to ``old_frequency``."""
        self.ack_map[float(new_frequency)] = self.ack_map.pop(
            float(old_frequency)
        )

    def _resolve(self, frequency: float) -> float | None:
        """The ACK frequency for an onset, within tolerance."""
        ack = self.ack_map.get(frequency)
        if ack is not None:
            return ack
        nearest = min(self.ack_map, key=lambda f: abs(f - frequency))
        if abs(nearest - frequency) <= self.tolerance_hz:
            return self.ack_map[nearest]
        return None

    def _on_onset(self, event) -> None:
        ack_frequency = self._resolve(event.frequency)
        if ack_frequency is None:
            self.acks_skipped += 1
            return
        if self.agent.play(ack_frequency, self.tone_duration,
                           self.tone_level_db):
            self.acks_played += 1


class ToneArqSender:
    """Device-side half of the acoustic ARQ: tone repetition until the
    ACK tone is heard.

    Plays the data tone, then records its own microphone over an ACK
    listening window; if the ACK frequency is absent, replays the data
    tone after an exponentially backed-off wait, until acknowledged or
    past the config deadline.
    """

    def __init__(self, sim: Simulator, channel, agent: MusicAgent,
                 microphone: Microphone, data_frequency: float,
                 ack_frequency: float, config: ArqConfig | None = None,
                 tone_duration: float = 0.08, ack_window: float = 0.45,
                 tone_level_db: float = 70.0) -> None:
        self.sim = sim
        self.channel = channel
        self.agent = agent
        self.microphone = microphone
        self.data_frequency = data_frequency
        self.ack_frequency = ack_frequency
        self.config = config or ArqConfig()
        self.tone_duration = tone_duration
        self.ack_window = ack_window
        self.tone_level_db = tone_level_db
        self.attempts = 0
        self.delivered = False
        self.expired = False
        self.delivered_at: float | None = None
        self._deadline = 0.0
        self._schedule: RetrySchedule | None = None
        self._detector = FrequencyDetector([ack_frequency])
        self._m_attempts = obs.counter("arq.tone_attempts")
        self._m_delivered = obs.counter("arq.tone_delivered")
        self._m_expired = obs.counter("arq.tone_expired")

    def send(self) -> None:
        """Start one reliable delivery (restartable after completion)."""
        self.attempts = 0
        self.delivered = False
        self.expired = False
        self.delivered_at = None
        self._schedule = self.config.schedule(self.sim.now)
        self._deadline = self._schedule.deadline
        self._attempt()

    def _attempt(self) -> None:
        if self.delivered or self.expired:
            return
        self.attempts += 1
        self._m_attempts.inc()
        self.agent.play(self.data_frequency, self.tone_duration,
                        self.tone_level_db)
        listen_start = self.sim.now + self.tone_duration
        self.sim.schedule_at(listen_start + self.ack_window,
                             self._check_ack, listen_start)

    def _check_ack(self, listen_start: float) -> None:
        capture = self.microphone.record(self.channel, listen_start,
                                         self.sim.now)
        if self._detector.detect(capture, listen_start):
            self.delivered = True
            self.delivered_at = self.sim.now
            self._m_delivered.inc()
            return
        # A retry only counts if the replayed tone and its ACK listening
        # window also fit before the deadline — that sum is the margin.
        retry_at = self._schedule.next_retry(
            self.sim.now, margin=self.tone_duration + self.ack_window
        )
        if retry_at is not None:
            self.sim.schedule_at(retry_at, self._attempt)
        else:
            self.expired = True
            self._m_expired.inc()
