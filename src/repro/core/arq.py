"""ARQ for the Music Protocol: repetition + acknowledgement + deadline.

ChirpCast-style acoustic links (arXiv:1508.07099) only become reliable
with acknowledgement and redundancy; the same holds for MDN's two lossy
hops.  This module adds a stop-and-wait-per-frame ARQ mode to both:

* :class:`MpArqSender` — the **wire** hop (switch → Pi).  Each MP
  message is framed with a 16-bit sequence number
  (``b"MD" + seq + wire``); the Pi acknowledges a cleanly-unmarshalled
  frame with ``b"MA" + seq`` on :data:`~repro.core.pi.MP_ACK_PORT`.
  Unacknowledged frames are retransmitted with exponential backoff
  until a per-frame delivery deadline expires.  The legacy bare
  12-byte path is untouched — ARQ is opt-in per sender.
* :class:`ToneArqSender` / :class:`AckToneResponder` — the **air** hop,
  literal tone repetition + ACK-tone: the sender plays its data tone,
  listens for the controller's ACK tone, and replays with backoff
  until acknowledged or the deadline passes.

Both senders share :class:`ArqConfig`; all timing is simulation time,
so every retransmission schedule is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..audio.detector import FrequencyDetector
from ..audio.devices import Microphone
from ..net.packet import Packet
from ..net.sim import Simulator
from .agent import MusicAgent
from .pi import ARQ_ACK_MAGIC, ARQ_ACK_SIZE, ARQ_DATA_MAGIC, MP_ACK_PORT, PiBridge
from .protocol import MusicProtocolMessage


@dataclass(frozen=True)
class ArqConfig:
    """Retransmission policy shared by the wire and air ARQ modes.

    The first retransmission waits ``initial_timeout``; each subsequent
    wait doubles (``backoff``) up to ``max_timeout``.  A frame still
    unacknowledged at ``deadline`` after first transmission is dropped
    and counted as expired — management traffic goes stale, it must
    not queue forever.
    """

    initial_timeout: float = 0.05
    backoff: float = 2.0
    max_timeout: float = 0.5
    deadline: float = 2.0

    def __post_init__(self) -> None:
        if self.initial_timeout <= 0:
            raise ValueError("initial_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_timeout < self.initial_timeout:
            raise ValueError("max_timeout must be >= initial_timeout")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass
class _PendingFrame:
    """Book-keeping for one in-flight ARQ frame."""

    wire: bytes
    first_sent: float
    deadline: float
    timeout: float
    attempts: int = 0
    #: Optional delivery callbacks — ``on_ack(sequence, latency)`` when
    #: the frame is acknowledged, ``on_expire(sequence)`` when its
    #: deadline passes unacknowledged.  The migration protocol uses
    #: these to learn which participants are PREPAREd.
    on_ack: object = None
    on_expire: object = None


@dataclass
class ArqStats:
    """Delivery summary for one sender."""

    sent: int
    acked: int
    retransmits: int
    expired: int
    delivery_rate: float
    mean_latency: float


class MpArqSender:
    """Reliable MP delivery over a :class:`~repro.core.pi.PiBridge`.

    Intercepts ACK frames with a switch receive hook (the Pi port is
    outside the flow table, so the hook is the only consumer); pending
    frames retransmit on a per-frame timer with exponential backoff
    until acknowledged or past the deadline.
    """

    def __init__(self, bridge: PiBridge,
                 config: ArqConfig | None = None) -> None:
        self.sim = bridge.sim
        self.bridge = bridge
        self.config = config or ArqConfig()
        self._pending: dict[int, _PendingFrame] = {}
        self._next_sequence = 0
        self.acked_log: list[tuple[int, float]] = []   # (seq, latency)
        self.expired_log: list[int] = []
        self._m_sent = obs.counter("arq.mp_frames_sent")
        self._m_retransmits = obs.counter("arq.mp_retransmits")
        self._m_acked = obs.counter("arq.mp_frames_acked")
        self._m_expired = obs.counter("arq.mp_frames_expired")
        bridge.switch.on_receive(self._on_switch_packet)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, message: MusicProtocolMessage) -> int:
        """Frame, transmit, and track one MP message; returns its
        sequence number."""
        return self.send_wire(message.marshal())

    def send_wire(self, payload: bytes, on_ack=None, on_expire=None) -> int:
        """Frame, transmit, and track one raw payload under the ARQ
        envelope (``b"MD" + seq + payload``); returns its sequence
        number.  ``on_ack(sequence, latency)`` / ``on_expire(sequence)``
        fire when the frame is acknowledged or its deadline passes."""
        sequence = self._next_sequence
        self._next_sequence = (self._next_sequence + 1) % 65_536
        wire = ARQ_DATA_MAGIC + sequence.to_bytes(2, "big") + payload
        now = self.sim.now
        self._pending[sequence] = _PendingFrame(
            wire=wire,
            first_sent=now,
            deadline=now + self.config.deadline,
            timeout=self.config.initial_timeout,
            on_ack=on_ack,
            on_expire=on_expire,
        )
        self._m_sent.inc()
        self._transmit(sequence)
        return sequence

    def _transmit(self, sequence: int) -> None:
        frame = self._pending.get(sequence)
        if frame is None:
            return
        frame.attempts += 1
        if frame.attempts > 1:
            self._m_retransmits.inc()
        packet = Packet(
            self.bridge._flow,
            size_bytes=len(frame.wire) + 42,
            created_at=self.sim.now,
            is_management=True,
            payload=frame.wire,
        )
        self.bridge.mp_sent.increment()
        self.bridge.switch.transmit(packet, self.bridge.pi_port)
        retry_at = self.sim.now + frame.timeout
        frame.timeout = min(frame.timeout * self.config.backoff,
                            self.config.max_timeout)
        if retry_at < frame.deadline:
            self.sim.schedule_at(retry_at, self._transmit, sequence)
        else:
            self.sim.schedule_at(frame.deadline, self._expire, sequence)

    def _expire(self, sequence: int) -> None:
        frame = self._pending.pop(sequence, None)
        if frame is not None:
            self._m_expired.inc()
            self.expired_log.append(sequence)
            if frame.on_expire is not None:
                frame.on_expire(sequence)

    # ------------------------------------------------------------------
    # ACK path
    # ------------------------------------------------------------------

    def _on_switch_packet(self, packet: Packet, in_port: int) -> None:
        if (in_port != self.bridge.pi_port
                or packet.flow.dst_port != MP_ACK_PORT):
            return
        payload = packet.payload
        if len(payload) != ARQ_ACK_SIZE or payload[:2] != ARQ_ACK_MAGIC:
            return
        sequence = int.from_bytes(payload[2:4], "big")
        frame = self._pending.pop(sequence, None)
        if frame is None:
            return  # duplicate ACK of a retransmitted frame
        self._m_acked.inc()
        latency = self.sim.now - frame.first_sent
        self.acked_log.append((sequence, latency))
        if frame.on_ack is not None:
            frame.on_ack(sequence, latency)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def stats(self) -> ArqStats:
        sent = self._m_sent.value
        acked = self._m_acked.value
        latencies = [latency for _seq, latency in self.acked_log]
        return ArqStats(
            sent=sent,
            acked=acked,
            retransmits=self._m_retransmits.value,
            expired=self._m_expired.value,
            delivery_rate=acked / sent if sent else 0.0,
            mean_latency=(sum(latencies) / len(latencies)
                          if latencies else float("nan")),
        )


class AckToneResponder:
    """Controller-side half of the acoustic ARQ: answer every data-tone
    onset with an ACK tone from the controller's own speaker.

    ``ack_map`` maps each watched data frequency to the ACK frequency
    the responder answers it with.  Must be constructed before
    ``controller.start()`` (it subscribes via ``watch``).
    """

    def __init__(self, controller, agent: MusicAgent,
                 ack_map: dict[float, float],
                 tone_duration: float = 0.05,
                 tone_level_db: float = 72.0) -> None:
        if not ack_map:
            raise ValueError("ack_map must not be empty")
        self.agent = agent
        self.ack_map = {float(freq): ack for freq, ack in ack_map.items()}
        self.tone_duration = tone_duration
        self.tone_level_db = tone_level_db
        self.acks_played = 0
        controller.watch(list(self.ack_map), on_onset=self._on_onset)

    def _on_onset(self, event) -> None:
        ack_frequency = self.ack_map[event.frequency]
        if self.agent.play(ack_frequency, self.tone_duration,
                           self.tone_level_db):
            self.acks_played += 1


class ToneArqSender:
    """Device-side half of the acoustic ARQ: tone repetition until the
    ACK tone is heard.

    Plays the data tone, then records its own microphone over an ACK
    listening window; if the ACK frequency is absent, replays the data
    tone after an exponentially backed-off wait, until acknowledged or
    past the config deadline.
    """

    def __init__(self, sim: Simulator, channel, agent: MusicAgent,
                 microphone: Microphone, data_frequency: float,
                 ack_frequency: float, config: ArqConfig | None = None,
                 tone_duration: float = 0.08, ack_window: float = 0.45,
                 tone_level_db: float = 70.0) -> None:
        self.sim = sim
        self.channel = channel
        self.agent = agent
        self.microphone = microphone
        self.data_frequency = data_frequency
        self.ack_frequency = ack_frequency
        self.config = config or ArqConfig()
        self.tone_duration = tone_duration
        self.ack_window = ack_window
        self.tone_level_db = tone_level_db
        self.attempts = 0
        self.delivered = False
        self.expired = False
        self.delivered_at: float | None = None
        self._deadline = 0.0
        self._timeout = self.config.initial_timeout
        self._detector = FrequencyDetector([ack_frequency])
        self._m_attempts = obs.counter("arq.tone_attempts")
        self._m_delivered = obs.counter("arq.tone_delivered")
        self._m_expired = obs.counter("arq.tone_expired")

    def send(self) -> None:
        """Start one reliable delivery (restartable after completion)."""
        self.attempts = 0
        self.delivered = False
        self.expired = False
        self.delivered_at = None
        self._deadline = self.sim.now + self.config.deadline
        self._timeout = self.config.initial_timeout
        self._attempt()

    def _attempt(self) -> None:
        if self.delivered or self.expired:
            return
        self.attempts += 1
        self._m_attempts.inc()
        self.agent.play(self.data_frequency, self.tone_duration,
                        self.tone_level_db)
        listen_start = self.sim.now + self.tone_duration
        self.sim.schedule_at(listen_start + self.ack_window,
                             self._check_ack, listen_start)

    def _check_ack(self, listen_start: float) -> None:
        capture = self.microphone.record(self.channel, listen_start,
                                         self.sim.now)
        if self._detector.detect(capture, listen_start):
            self.delivered = True
            self.delivered_at = self.sim.now
            self._m_delivered.inc()
            return
        retry_at = self.sim.now + self._timeout
        self._timeout = min(self._timeout * self.config.backoff,
                            self.config.max_timeout)
        if retry_at + self.tone_duration + self.ack_window <= self._deadline:
            self.sim.schedule_at(retry_at, self._attempt)
        else:
            self.expired = True
            self._m_expired.inc()
