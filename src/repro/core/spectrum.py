"""Spectrum agility: move around interference instead of surrendering.

The paper's frequency plan is static, yet §5/Fig 4b shows the acoustic
environment is adversarial — a popular song in the room degrades
detection.  PR 4's failover abandons the acoustic channel entirely when
that happens; a self-healing audio system (arXiv:1511.08587) should
instead *relocate*, and acoustic-data work like ChirpCast
(arXiv:1508.07099) shows band selection is the dominant reliability
lever.  This module closes that loop:

* :class:`InterferenceSentinel` — estimates per-band occupancy from the
  window spectra the detector already computes (tapped through
  ``MDNController.add_spectrum_sink``; zero extra FFTs) and classifies
  *persistent* interferers with hysteresis, so a transient burst or a
  legitimate chirp duty cycle never triggers churn.
* :func:`replan` — a minimal-diff solver relocating the allocations
  overlapping interfered bands *and their desensitization shadow* (a
  loud interferer makes the detector's sidelobe rejection drop real
  tones up to ``SIDELOBE_RADIUS_HZ`` away), preserving the ≥ guard
  spacing and per-device disjointness the plan grid enforces.
* :class:`SpectrumAgilityManager` — a two-phase migration protocol
  (PLAN_PREPARE / PLAN_COMMIT, rollback on deadline) over the existing
  :class:`~repro.core.arq.MpArqSender` envelope.  During the handover
  the controller listens on *both* old and new frequencies
  (make-before-break) and detections carry the plan epoch, so zero
  telemetry events are lost or misattributed across a commit.

Known limitation: the sentinel does not mask the plan's own tones, so a
*near-continuous* legitimate emitter (duty cycle above
``on_fraction``) parked exactly on its own frequency would be
classified as interference.  MDN chirps are short beats on long
periods (duty well under 50%), which the default 92% persistence
fraction can never reach; deployments with continuous carriers should
raise ``on_fraction`` or pre-ban those slots.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from .. import obs
from ..audio.detector import SIDELOBE_RADIUS_HZ
from ..audio.signal import FULL_SCALE_DB
from ..infra import RetryPolicy, RetrySchedule
from .arq import MpArqSender
from .controller import MDNController
from .frequency_plan import Allocation, FrequencyPlan, FrequencyPlanError
from .protocol import (
    PLAN_ABORT,
    PLAN_COMMIT,
    PLAN_PREPARE,
    PlanControlMessage,
)

#: Callback signature for sentinel state changes:
#: ``callback(newly_interfered, newly_clean, time)`` with slot sets.
BandChangeCallback = Callable[[frozenset, frozenset, float], None]


class InterferenceSentinel:
    """Per-band interference classifier fed by detector spectra.

    Each plan grid slot owns one guard-width band centred on its
    frequency.  Every window, a band is *hot* when its peak magnitude
    stands ``margin_db`` above the window's noise floor **and** above
    ``min_level_db`` absolute.  A slot is classified INTERFERED when at
    least ``on_fraction`` of the last ``persistence_windows`` windows
    were hot (so a 27%-duty MDN chirp can't trip it), and returns to
    clean only after ``clear_windows`` consecutive cool windows — both
    directions are hysteretic, the replanner never chases a transient.

    Parameters
    ----------
    plan:
        The grid whose slots are monitored.
    controller:
        When given, the sentinel self-registers via
        ``controller.add_spectrum_sink(self.observe)``.
    margin_db:
        Required prominence above the per-window noise floor.
    min_level_db:
        Absolute level floor for a hot band (matches the detector's
        "at least 30 dB" rule; quieter energy can't mask detections).
    persistence_windows:
        Classification memory, in windows.
    on_fraction:
        Hot fraction of the memory needed to classify.
    clear_windows:
        Consecutive cool windows needed to declassify.
    enabled:
        When False, :meth:`observe` returns immediately — the
        disabled path costs one attribute check and is gated bit-
        identical in the perf suite.
    """

    def __init__(
        self,
        plan: FrequencyPlan,
        controller: MDNController | None = None,
        margin_db: float = 12.0,
        min_level_db: float = 30.0,
        persistence_windows: int = 12,
        on_fraction: float = 0.92,
        clear_windows: int = 15,
        enabled: bool = True,
    ) -> None:
        if persistence_windows < 1:
            raise ValueError("persistence_windows must be >= 1")
        if not 0.0 < on_fraction <= 1.0:
            raise ValueError("on_fraction must be in (0, 1]")
        if clear_windows < 1:
            raise ValueError("clear_windows must be >= 1")
        self.plan = plan
        self.margin_db = margin_db
        self.min_level_db = min_level_db
        self.persistence_windows = persistence_windows
        self.on_fraction = on_fraction
        self.clear_windows = clear_windows
        self.enabled = enabled
        self._needed = math.ceil(on_fraction * persistence_windows)
        capacity = plan.capacity
        # Band edges: slots tile the band contiguously at guard width,
        # each centred on its grid frequency.
        self._edges_hz = (
            plan.low_hz - plan.guard_hz / 2.0
            + np.arange(capacity + 1) * plan.guard_hz
        )
        self._bin_edges: np.ndarray | None = None
        self._grid_key: tuple | None = None
        self._history: deque[np.ndarray] = deque(maxlen=persistence_windows)
        self._hot_counts = np.zeros(capacity, dtype=np.int32)
        self._cool_streak = np.zeros(capacity, dtype=np.int32)
        self._interfered: set[int] = set()
        self.windows_seen = 0
        self._subscribers: list[BandChangeCallback] = []
        self._m_classified = obs.counter("spectrum.bands_classified")
        self._m_cleared = obs.counter("spectrum.bands_cleared")
        self._g_interfered = obs.gauge("spectrum.interfered_bands")
        if controller is not None:
            controller.add_spectrum_sink(self.observe)

    # ------------------------------------------------------------------
    # Queries / subscription
    # ------------------------------------------------------------------

    def interfered_slots(self) -> frozenset:
        """Grid slots currently classified as interfered."""
        return frozenset(self._interfered)

    def interfered_frequencies(self) -> list[float]:
        """Centre frequencies of the interfered slots, ascending."""
        return [self.plan.slot_frequency(slot)
                for slot in sorted(self._interfered)]

    def on_change(self, callback: BandChangeCallback) -> None:
        """Call ``callback(newly_interfered, newly_clean, time)`` on
        every classification change."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # The spectrum tap
    # ------------------------------------------------------------------

    def observe(self, spectrum, time: float) -> None:
        """Ingest one window spectrum (the detector's own)."""
        if not self.enabled:
            return
        levels_db = self._band_levels_db(spectrum)
        floor_db = spectrum.noise_floor_db()
        hot = (
            (levels_db >= floor_db + self.margin_db)
            & (levels_db >= self.min_level_db)
        )
        self.windows_seen += 1
        if len(self._history) == self._history.maxlen:
            self._hot_counts -= self._history[0]
        self._history.append(hot.astype(np.int32))
        self._hot_counts += self._history[-1]
        self._cool_streak = np.where(hot, 0, self._cool_streak + 1)

        added: set[int] = set()
        removed: set[int] = set()
        if self.windows_seen >= self.persistence_windows:
            for slot in np.flatnonzero(self._hot_counts >= self._needed):
                slot = int(slot)
                if slot not in self._interfered:
                    self._interfered.add(slot)
                    added.add(slot)
        if self._interfered:
            for slot in np.flatnonzero(self._cool_streak >= self.clear_windows):
                slot = int(slot)
                if slot in self._interfered:
                    self._interfered.discard(slot)
                    removed.add(slot)
        if added or removed:
            self._m_classified.inc(len(added))
            self._m_cleared.inc(len(removed))
            self._g_interfered.set(len(self._interfered))
            for callback in self._subscribers:
                callback(frozenset(added), frozenset(removed), time)

    def _band_levels_db(self, spectrum) -> np.ndarray:
        """Peak level per grid-slot band, dB SPL, one window."""
        frequencies = spectrum.frequencies
        grid_key = (
            len(frequencies),
            float(frequencies[0]) if len(frequencies) else 0.0,
            float(frequencies[-1]) if len(frequencies) else 0.0,
        )
        if grid_key != self._grid_key:
            # The analyzer's bin grid is constant across windows, so
            # the band → bin mapping is computed once and reused.
            self._bin_edges = np.searchsorted(frequencies, self._edges_hz)
            self._grid_key = grid_key
        edges = self._bin_edges
        magnitudes = spectrum.magnitudes
        # Bound the spectrum at the top band edge so reduceat's last
        # segment cannot swallow everything up to Nyquist.
        upper = int(min(edges[-1], len(magnitudes)))
        if upper <= 0:
            return np.full(len(edges) - 1, -400.0)
        starts = np.minimum(edges[:-1], upper - 1)
        peaks = np.maximum.reduceat(magnitudes[:upper], starts)
        # reduceat yields a stray neighbour value for empty bands
        # (edges[i] >= edges[i+1], or past the bounded range); silence
        # them explicitly.
        empty = (edges[:-1] >= edges[1:]) | (edges[:-1] >= upper)
        if empty.any():
            peaks = np.where(empty, 0.0, peaks)
        return FULL_SCALE_DB + 20.0 * np.log10(np.maximum(peaks, 1e-12))


# ----------------------------------------------------------------------
# Replanning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FrequencyMove:
    """One allocation entry relocating to a clean slot."""

    device: str
    index: int
    old_slot: int
    new_slot: int
    old_hz: float
    new_hz: float


def shadowed_slots(
    plan: FrequencyPlan,
    interfered_slots: Iterable[int],
    shadow_hz: float,
) -> frozenset:
    """Slots within ``shadow_hz`` of any interfered slot's centre.

    A loud interferer does not only occupy its own band: the detector's
    sidelobe rejection (``SIDELOBE_RADIUS_HZ`` / ``SIDELOBE_REJECTION_DB``
    in :mod:`repro.audio.detector`) drops any peak sitting within the
    rejection radius of a much stronger one, so tones *near* the
    interferer are desensitized even though their own band is clean.
    The returned set includes the interfered slots themselves.
    """
    interfered = set(interfered_slots)
    if not interfered:
        return frozenset()
    radius = int(shadow_hz // plan.guard_hz) if shadow_hz > 0 else 0
    shadowed: set[int] = set()
    for hot in interfered:
        lo = max(0, hot - radius)
        hi = min(plan.capacity - 1, hot + radius)
        shadowed.update(range(lo, hi + 1))
    return frozenset(shadowed)


def replan(
    plan: FrequencyPlan,
    interfered_slots: Iterable[int],
    banned_slots: Iterable[int] = (),
    shadow_hz: float = 0.0,
) -> tuple[FrequencyMove, ...]:
    """Minimal-diff relocation of allocations out of interfered bands.

    Entries sitting in an interfered slot — or, when ``shadow_hz`` is
    positive, within the interferer's desensitization shadow (see
    :func:`shadowed_slots`) — move; every other allocation is
    untouched.  Targets are free grid slots outside the interfered,
    shadowed, and banned sets, preferring slots whose immediate
    neighbours are also clean, lowest-frequency first.  Raises
    :class:`~repro.core.frequency_plan.FrequencyPlanError` when the
    clean spectrum cannot absorb the displaced entries.
    """
    interfered = set(interfered_slots)
    banned = set(banned_slots)
    if not interfered:
        return ()
    blocked = set(shadowed_slots(plan, interfered, shadow_hz)) | interfered
    candidates = [
        slot for slot in plan.free_slots()
        if slot not in blocked and slot not in banned
    ]
    preferred = [
        slot for slot in candidates
        if (slot - 1) not in blocked and (slot + 1) not in blocked
    ]
    fallback = [slot for slot in candidates if slot not in set(preferred)]
    queue = preferred + fallback
    taken: set[int] = set()
    moves: list[FrequencyMove] = []
    for device in plan.devices():
        allocation = plan.allocation_of(device)
        for index, frequency in enumerate(allocation.frequencies):
            old_slot = plan.slot_of(frequency)
            if old_slot not in blocked:
                continue
            target = next(
                (slot for slot in queue if slot not in taken), None
            )
            if target is None:
                raise FrequencyPlanError(
                    f"no clean slot left for {device!r}[{index}] "
                    f"({frequency} Hz): {len(interfered)} slots interfered, "
                    f"{len(blocked)} blocked with shadow"
                )
            taken.add(target)
            moves.append(FrequencyMove(
                device=device,
                index=index,
                old_slot=old_slot,
                new_slot=target,
                old_hz=frequency,
                new_hz=plan.slot_frequency(target),
            ))
    return tuple(moves)


# ----------------------------------------------------------------------
# Migration participants (phase 2 executors, one per device)
# ----------------------------------------------------------------------


class LocalPlanParticipant:
    """In-process participant for devices driven without a Pi link.

    PREPARE acknowledges after ``prepare_delay`` (immediately by
    default) unless ``fail_prepare`` is set, which models a wedged
    device: the manager's deadline then fires and the migration rolls
    back.  COMMIT invokes every ``on_commit`` callback with the
    device's fresh :class:`~repro.core.frequency_plan.Allocation` — the
    hook tone-mapped apps rebind through.
    """

    def __init__(
        self,
        sim,
        device: str,
        on_commit: Iterable[Callable[[Allocation], None]] = (),
        prepare_delay: float = 0.0,
        fail_prepare: bool = False,
    ) -> None:
        self.sim = sim
        self.device = device
        self.on_commit = list(on_commit)
        self.prepare_delay = prepare_delay
        self.fail_prepare = fail_prepare
        self.staged_epoch: int | None = None
        self.committed_epochs: list[int] = []
        self.aborted_epochs: list[int] = []

    def prepare(self, message: PlanControlMessage,
                on_ready: Callable[[str], None],
                on_fail: Callable[[str], None]) -> None:
        if self.fail_prepare:
            return  # silence: the manager's deadline handles it
        def _ready() -> None:
            self.staged_epoch = message.epoch
            on_ready(self.device)
        if self.prepare_delay > 0:
            self.sim.schedule_at(self.sim.now + self.prepare_delay, _ready)
        else:
            _ready()

    def commit(self, message: PlanControlMessage,
               allocation: Allocation) -> None:
        self.staged_epoch = None
        self.committed_epochs.append(message.epoch)
        for callback in self.on_commit:
            callback(allocation)

    def abort(self, message: PlanControlMessage) -> None:
        self.staged_epoch = None
        self.aborted_epochs.append(message.epoch)


class PiPlanParticipant:
    """Participant whose phases travel as real bytes to a Pi host.

    PREPARE / COMMIT / ABORT frames ride the
    :class:`~repro.core.arq.MpArqSender` envelope (``b"MD" + seq`` +
    :class:`~repro.core.protocol.PlanControlMessage` wire) to the Pi,
    which stages moves on PREPARE and applies them on COMMIT —
    rebinding only when the commit actually *reaches* the device, like
    the testbed would.  The ARQ ACK of the PREPARE frame is the phase-1
    vote; an expired PREPARE reports failure and the manager rolls
    back.
    """

    def __init__(
        self,
        sender: MpArqSender,
        device: str,
        allocation: Allocation,
        on_commit: Iterable[Callable[[Allocation], None]] = (),
    ) -> None:
        self.sender = sender
        self.device = device
        self.allocation = allocation
        self.on_commit = list(on_commit)
        self.committed_epochs: list[int] = []
        self._staged: tuple[int, tuple] | None = None
        sender.bridge.pi.plan_handler = self._handle_frame

    # Controller side ---------------------------------------------------

    def prepare(self, message: PlanControlMessage,
                on_ready: Callable[[str], None],
                on_fail: Callable[[str], None]) -> None:
        self.sender.send_wire(
            message.marshal(),
            on_ack=lambda _seq, _latency: on_ready(self.device),
            on_expire=lambda _seq: on_fail(self.device),
        )

    def commit(self, message: PlanControlMessage,
               allocation: Allocation) -> None:
        # The fresh allocation is recomputed Pi-side from the staged
        # moves when the COMMIT frame arrives; the controller-side copy
        # is ignored on purpose (the wire is the source of truth).
        self.sender.send_wire(message.marshal())

    def abort(self, message: PlanControlMessage) -> None:
        self.sender.send_wire(message.marshal())

    # Pi side -----------------------------------------------------------

    def _handle_frame(self, message: PlanControlMessage) -> bool:
        if message.phase == PLAN_PREPARE:
            self._staged = (message.epoch, message.moves)
            return True
        if message.phase == PLAN_COMMIT:
            moves = message.moves
            if not moves and self._staged is not None \
                    and self._staged[0] == message.epoch:
                moves = self._staged[1]
            index_moves = {index: new_hz for index, _old, new_hz in moves}
            if index_moves:
                self.allocation = self.allocation.moved(index_moves)
            self._staged = None
            self.committed_epochs.append(message.epoch)
            for callback in self.on_commit:
                callback(self.allocation)
            return True
        if message.phase == PLAN_ABORT:
            self._staged = None
            return True
        return False


# ----------------------------------------------------------------------
# The migration manager
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or rolled-back) migration attempt."""

    epoch: int
    status: str                       #: ``"committed"`` or ``"aborted"``
    classified_at: float
    resolved_at: float
    moves: tuple[FrequencyMove, ...]
    reason: str = ""

    @property
    def latency(self) -> float:
        return self.resolved_at - self.classified_at


@dataclass
class _ActiveMigration:
    """In-flight two-phase state."""

    epoch: int
    classified_at: float
    moves: tuple[FrequencyMove, ...]
    by_device: dict[str, tuple[FrequencyMove, ...]]
    ready: set[str] = field(default_factory=set)
    resolved: bool = False
    recheck: bool = False


class SpectrumAgilityManager:
    """Closed-loop coordinator: sentinel → replanner → 2-phase commit.

    When the sentinel classifies new interference overlapping any
    allocation, the manager computes a minimal-diff plan, immediately
    extends the controller's watch list with the target frequencies
    (make-before-break: the listener is live on the new tones before
    any emitter can switch), PREPAREs every affected participant, and
    COMMITs once all have voted ready.  A participant that misses the
    ``prepare_timeout`` deadline aborts the round — ABORT frames go to
    the ready participants, the extra watch is retracted, and the
    attempt retries after ``retry_backoff``.

    Parameters
    ----------
    controller, plan, sentinel:
        The listening controller, the live plan, and the classifier
        (the manager subscribes to its change feed).
    handover:
        Make-before-break window: how long the controller keeps
        listening on vacated frequencies after COMMIT.  Defaults to 4
        listening intervals — enough for a tone started just before
        commit plus ARQ delivery of the COMMIT frame.
    prepare_timeout:
        Phase-1 deadline, seconds.
    retry_backoff:
        Delay before the *first* re-attempt after a rollback.
    retry_policy:
        The :class:`repro.infra.RetryPolicy` consecutive rollbacks walk
        (a wedged participant must not be re-PREPAREd at a fixed
        cadence forever).  Defaults to exponential backoff starting at
        ``retry_backoff``, capped at 8× it, with no deadline — the
        manager never gives up, it just slows down.  A commit resets
        the schedule.
    shadow_hz:
        Desensitization radius around interfered bands: allocations
        within it are relocated too, and target slots must clear it.
        Defaults to the detector's sidelobe-rejection radius — a loud
        interferer masks watched tones that far out even though their
        own bands carry no interference energy.
    """

    def __init__(
        self,
        controller: MDNController,
        plan: FrequencyPlan,
        sentinel: InterferenceSentinel,
        handover: float | None = None,
        prepare_timeout: float = 1.0,
        retry_backoff: float = 2.0,
        shadow_hz: float = SIDELOBE_RADIUS_HZ,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if prepare_timeout <= 0:
            raise ValueError("prepare_timeout must be positive")
        self.controller = controller
        self.plan = plan
        self.sentinel = sentinel
        self.handover = (
            4 * controller.listen_interval if handover is None else handover
        )
        self.prepare_timeout = prepare_timeout
        self.retry_backoff = retry_backoff
        self.retry_policy = retry_policy or RetryPolicy(
            initial_timeout=retry_backoff,
            backoff=2.0,
            max_timeout=8 * retry_backoff,
            deadline=math.inf,
        )
        self._retry_schedule: RetrySchedule | None = None
        self.shadow_hz = shadow_hz
        self.sim = controller.sim
        self.participants: dict[str, object] = {}
        self.records: list[MigrationRecord] = []
        self._active: _ActiveMigration | None = None
        self._m_committed = obs.counter("spectrum.migrations_committed")
        self._m_aborted = obs.counter("spectrum.migrations_aborted")
        self._m_unplannable = obs.counter("spectrum.replans_unplannable")
        self._g_epoch = obs.gauge("spectrum.plan_epoch")
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_latency_ms = self._obs.histogram(
                "spectrum.migration_latency_ms"
            )
        sentinel.on_change(self._on_bands_changed)

    def add_participant(self, device: str, participant) -> None:
        """Register the phase executor for ``device``.  Devices without
        one get an implicit always-ready local participant (their
        symbol maps live controller-side only)."""
        self.participants[device] = participant

    # ------------------------------------------------------------------
    # Trigger
    # ------------------------------------------------------------------

    def _on_bands_changed(self, added: frozenset, removed: frozenset,
                          time: float) -> None:
        if added:
            self._maybe_migrate(time)

    def _maybe_migrate(self, classified_at: float) -> None:
        if self._active is not None:
            self._active.recheck = True
            return
        try:
            moves = replan(self.plan, self.sentinel.interfered_slots(),
                           shadow_hz=self.shadow_hz)
        except FrequencyPlanError:
            self._m_unplannable.inc()
            return
        if not moves:
            return
        epoch = self.plan.epoch + 1
        by_device: dict[str, list[FrequencyMove]] = {}
        for move in moves:
            by_device.setdefault(move.device, []).append(move)
        state = _ActiveMigration(
            epoch=epoch,
            classified_at=classified_at,
            moves=moves,
            by_device={device: tuple(ms) for device, ms in by_device.items()},
        )
        self._active = state
        # Make-before-break: listen on the targets before anyone emits
        # there, so a tone played the instant after COMMIT is heard.
        self.controller.extend_watch([move.new_hz for move in moves])
        for device, device_moves in state.by_device.items():
            message = PlanControlMessage(
                PLAN_PREPARE, epoch,
                tuple((m.index, m.old_hz, m.new_hz) for m in device_moves),
            )
            self._participant_for(device).prepare(
                message, self._on_ready, self._on_prepare_fail
            )
        self.sim.schedule_at(
            self.sim.now + self.prepare_timeout, self._on_deadline, state
        )

    def _participant_for(self, device: str):
        participant = self.participants.get(device)
        if participant is None:
            participant = LocalPlanParticipant(self.sim, device)
            self.participants[device] = participant
        return participant

    # ------------------------------------------------------------------
    # Phase resolution
    # ------------------------------------------------------------------

    def _on_ready(self, device: str) -> None:
        state = self._active
        if state is None or state.resolved:
            return
        state.ready.add(device)
        if state.ready >= set(state.by_device):
            self._commit(state)

    def _on_prepare_fail(self, device: str) -> None:
        state = self._active
        if state is None or state.resolved:
            return
        self._rollback(state, f"prepare lost to {device!r}")

    def _on_deadline(self, state: _ActiveMigration) -> None:
        if state is not self._active or state.resolved:
            return
        missing = sorted(set(state.by_device) - state.ready)
        self._rollback(state, f"prepare deadline: {missing} never voted")

    def _commit(self, state: _ActiveMigration) -> None:
        state.resolved = True
        fresh = self.plan.apply_moves(
            (move.device, move.index, move.new_slot) for move in state.moves
        )
        epoch = self.plan.epoch
        self.controller.migrate_watch(
            {move.old_hz: move.new_hz for move in state.moves},
            epoch, self.handover,
        )
        for device, device_moves in state.by_device.items():
            message = PlanControlMessage(
                PLAN_COMMIT, epoch,
                tuple((m.index, m.old_hz, m.new_hz) for m in device_moves),
            )
            self._participant_for(device).commit(message, fresh[device])
        now = self.sim.now
        record = MigrationRecord(
            epoch=epoch,
            status="committed",
            classified_at=state.classified_at,
            resolved_at=now,
            moves=state.moves,
        )
        self.records.append(record)
        self._m_committed.inc()
        self._g_epoch.set(epoch)
        if self._obs is not None:
            self._m_latency_ms.observe(record.latency * 1e3)
        self._retry_schedule = None  # rollback backoff restarts fresh
        self._active = None
        if state.recheck:
            self.sim.schedule_at(now, self._maybe_migrate, now)

    def _rollback(self, state: _ActiveMigration, reason: str) -> None:
        state.resolved = True
        message = PlanControlMessage(PLAN_ABORT, state.epoch)
        for device in sorted(state.ready):
            self._participant_for(device).abort(message)
        self.controller.retract_watch(
            [move.new_hz for move in state.moves]
        )
        now = self.sim.now
        self.records.append(MigrationRecord(
            epoch=state.epoch,
            status="aborted",
            classified_at=state.classified_at,
            resolved_at=now,
            moves=state.moves,
            reason=reason,
        ))
        self._m_aborted.inc()
        self._active = None
        if self._retry_schedule is None:
            self._retry_schedule = self.retry_policy.schedule(now)
        self.sim.schedule_at(
            self._retry_schedule.next_retry(now), self._maybe_migrate, now,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def migrations_committed(self) -> int:
        return sum(1 for r in self.records if r.status == "committed")

    @property
    def migrations_aborted(self) -> int:
        return sum(1 for r in self.records if r.status == "aborted")
