"""Multi-hop sound transmission: the paper's §8 open question.

"We limit our evaluation to close-range applications, as we transmit
sound signals between devices over a single hop. ... A more efficient
multi-hop sound transmission would allow greater flexibility in device
placement.  We leave this as an open question."

:class:`ToneRelay` answers it with the obvious store-and-forward
design: a relay owns a microphone, a speaker and *two* frequency
blocks.  It listens for tones in its **uplink** block (where distant
sources transmit) and re-emits each one, frequency-translated slot-for-
slot, in its **downlink** block.  Translation — rather than simple
repetition — prevents the relay's own emission from re-triggering its
detector (acoustic feedback) and lets a chain of relays ladder a tone
across a room one block at a time, exactly like frequency-division
repeaters in radio systems.
"""

from __future__ import annotations

from ..audio.channel import AcousticChannel
from ..audio.detector import FrequencyDetector
from ..audio.devices import Microphone, Speaker
from ..audio.synth import ToneSpec
from ..net.sim import PeriodicTimer, Simulator
from ..net.stats import Counter
from .frequency_plan import Allocation


class ToneRelay:
    """A frequency-translating acoustic repeater.

    Parameters
    ----------
    sim, channel:
        Shared clock and air.
    microphone, speaker:
        The relay's own ears and voice (place them at the relay's
        position).
    uplink, downlink:
        Frequency blocks of equal size; a tone heard at
        ``uplink.frequency_for(i)`` is re-emitted at
        ``downlink.frequency_for(i)``.
    listen_interval:
        Capture window length (also the relay's added per-hop latency
        bound, plus the tone duration).
    tone_duration, gain_db:
        The re-emission parameters; ``gain_db`` is added to the
        *received* level so a weak incoming tone leaves strong
        (amplification is the point of a repeater).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: AcousticChannel,
        microphone: Microphone,
        speaker: Speaker,
        uplink: Allocation,
        downlink: Allocation,
        listen_interval: float = 0.1,
        tone_duration: float = 0.08,
        gain_db: float = 30.0,
        min_level_db: float = 25.0,
        refractory: float = 0.25,
        name: str = "relay",
    ) -> None:
        if len(uplink) != len(downlink):
            raise ValueError(
                f"uplink ({len(uplink)}) and downlink ({len(downlink)}) "
                "blocks must be the same size"
            )
        if set(uplink.frequencies) & set(downlink.frequencies):
            raise ValueError("uplink and downlink blocks must be disjoint")
        self.sim = sim
        self.channel = channel
        self.microphone = microphone
        self.speaker = speaker
        self.uplink = uplink
        self.downlink = downlink
        self.listen_interval = listen_interval
        self.tone_duration = tone_duration
        self.gain_db = gain_db
        self.refractory = refractory
        self.name = name
        self.relayed = Counter(f"{name}.relayed")
        self._detector = FrequencyDetector(
            list(uplink.frequencies), min_level_db=min_level_db
        )
        self._previous: set[float] = set()
        self._last_relay: dict[float, float] = {}
        self._timer: PeriodicTimer | None = None

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("relay already started")
        self._timer = self.sim.every(self.listen_interval, self._listen_once)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def translate(self, uplink_frequency: float) -> float:
        """The downlink frequency an uplink tone maps to."""
        return self.downlink.frequency_for(
            self.uplink.index_of(uplink_frequency)
        )

    def _listen_once(self) -> None:
        end = self.sim.now
        window = self.microphone.record(
            self.channel, end - self.listen_interval, end
        )
        events = self._detector.detect(window, end - self.listen_interval)
        present = {event.frequency for event in events}
        for event in events:
            if event.frequency in self._previous:
                continue  # tone continuing, already relayed its onset
            last = self._last_relay.get(event.frequency)
            if last is not None and end - last < self.refractory:
                continue
            self._last_relay[event.frequency] = end
            out_level = min(event.level_db + self.gain_db,
                            self.speaker.max_level_db)
            self.speaker.play(
                self.channel, end,
                ToneSpec(self.translate(event.frequency),
                         self.tone_duration, out_level),
            )
            self.relayed.increment()
        self._previous = present


def build_relay_chain(
    sim: Simulator,
    channel: AcousticChannel,
    plan,
    positions: list,
    block_size: int,
    name_prefix: str = "relay",
    **relay_kwargs,
) -> list[ToneRelay]:
    """Wire a chain of relays laddering tones block-to-block.

    Allocates ``len(positions) + 1`` consecutive blocks from ``plan``:
    block 0 is the chain's ingress (where sources transmit); relay *i*
    sits at ``positions[i]``, listens on block *i* and re-emits on
    block *i + 1*.  The final block is what the far-end controller
    watches.  Returns the (started) relays.
    """
    blocks = [
        plan.allocate(f"{name_prefix}-block{index}", block_size)
        for index in range(len(positions) + 1)
    ]
    relays = []
    for index, position in enumerate(positions):
        relay = ToneRelay(
            sim, channel,
            Microphone(position, seed=100 + index),
            Speaker(position),
            uplink=blocks[index],
            downlink=blocks[index + 1],
            name=f"{name_prefix}{index}",
            **relay_kwargs,
        )
        relay.start()
        relays.append(relay)
    return relays
