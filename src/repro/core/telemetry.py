"""Tone-count telemetry: the shared engine behind Section 5.

Both §5 use cases reduce to the same primitive: count how often each
watched frequency is heard per time interval, then apply a rule —

* *heavy hitter*: one frequency heard "more than a threshold in a
  given time interval";
* *port scan*: many *distinct* frequencies heard within an interval.

:class:`ToneCounter` maintains those per-interval histograms from the
controller's onset stream and exposes both rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..audio.detector import DetectionEvent
from ..net.stats import TimeSeries


@dataclass(frozen=True)
class IntervalCounts:
    """One closed measurement interval."""

    start: float
    end: float
    counts: dict[float, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def distinct(self) -> int:
        return len(self.counts)


class ToneCounter:
    """Per-interval histograms of tone onsets.

    Parameters
    ----------
    interval:
        Measurement interval length, seconds.
    """

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._current_start: float | None = None
        self._current: dict[float, int] = {}
        self.closed: list[IntervalCounts] = []
        #: Series of per-interval totals (for plots/tests).
        self.totals = TimeSeries("tone_counter.totals")

    def observe(self, event: DetectionEvent) -> None:
        """Feed one tone onset (wire to ``MDNController.watch(on_onset=...)``)."""
        self._roll_to(event.time)
        self._current[event.frequency] = self._current.get(event.frequency, 0) + 1

    def _roll_to(self, time: float) -> None:
        """Advance the active interval to the one containing ``time``.

        Skip-ahead semantics: the elapsed interval is closed only when
        it actually counted something, and the gap up to ``time`` is
        jumped in one step — an hour of silence on a sparse onset
        stream appends *nothing* instead of 3600 empty
        :class:`IntervalCounts`.
        """
        if self._current_start is None:
            self._current_start = self._align(time)
            return
        if time < self._current_start + self.interval:
            return
        if self._current:
            self._close_interval()
        aligned = self._align(time)
        if aligned > self._current_start:
            self._current_start = aligned

    def _align(self, time: float) -> float:
        return (time // self.interval) * self.interval

    def _close_interval(self) -> None:
        assert self._current_start is not None
        end = self._current_start + self.interval
        snapshot = IntervalCounts(self._current_start, end, dict(self._current))
        self.closed.append(snapshot)
        self.totals.record(end, snapshot.total)
        self._current = {}
        self._current_start = end

    def flush(self, now: float, close_partial: bool = False) -> None:
        """Close any interval that has fully elapsed by ``now``.

        With ``close_partial=True`` the still-open trailing interval is
        also closed, as ``[start, now)`` — call this once at the end of
        a run, or onsets from the final sub-interval are never counted
        (they sat in the open histogram forever).  A later observation
        simply starts a fresh aligned interval.
        """
        if self._current_start is None:
            return
        self._roll_to(now)
        if close_partial and self._current and now > self._current_start:
            snapshot = IntervalCounts(self._current_start, now,
                                      dict(self._current))
            self.closed.append(snapshot)
            self.totals.record(now, snapshot.total)
            self._current = {}
            self._current_start = None

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def frequencies_over(self, threshold: int) -> list[tuple[float, float]]:
        """``(interval_start, frequency)`` pairs where a frequency was
        heard more than ``threshold`` times in one interval — the heavy
        hitter rule."""
        hits = []
        for interval in self.closed:
            for frequency, count in sorted(interval.counts.items()):
                if count > threshold:
                    hits.append((interval.start, frequency))
        return hits

    def intervals_with_distinct_over(self, threshold: int) -> list[IntervalCounts]:
        """Intervals where more than ``threshold`` distinct frequencies
        were heard — the scan/superspreader rule."""
        return [
            interval for interval in self.closed if interval.distinct > threshold
        ]

    def count_history(self, frequency: float) -> TimeSeries:
        """Per-interval count series for one frequency."""
        series = TimeSeries(f"tone_counter.{frequency:.0f}Hz")
        for interval in self.closed:
            series.record(interval.end, interval.counts.get(frequency, 0))
        return series
