"""Tone-count telemetry: the shared engine behind Section 5.

Both §5 use cases reduce to the same primitive: count how often each
watched frequency is heard per time interval, then apply a rule —

* *heavy hitter*: one frequency heard "more than a threshold in a
  given time interval";
* *port scan*: many *distinct* frequencies heard within an interval.

:class:`ToneCounter` maintains those per-interval histograms from the
controller's onset stream and exposes both rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..audio.detector import DetectionEvent
from ..net.stats import TimeSeries


@dataclass(frozen=True)
class IntervalCounts:
    """One closed measurement interval."""

    start: float
    end: float
    counts: dict[float, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def distinct(self) -> int:
        return len(self.counts)


class ToneCounter:
    """Per-interval histograms of tone onsets.

    Parameters
    ----------
    interval:
        Measurement interval length, seconds.
    """

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._current_start: float | None = None
        self._current: dict[float, int] = {}
        self.closed: list[IntervalCounts] = []
        #: Series of per-interval totals (for plots/tests).
        self.totals = TimeSeries("tone_counter.totals")

    def observe(self, event: DetectionEvent) -> None:
        """Feed one tone onset (wire to ``MDNController.watch(on_onset=...)``)."""
        self._roll_to(event.time)
        self._current[event.frequency] = self._current.get(event.frequency, 0) + 1

    def _roll_to(self, time: float) -> None:
        """Advance the active interval to the one containing ``time``.

        Skip-ahead semantics: the elapsed interval is closed only when
        it actually counted something, and the gap up to ``time`` is
        jumped in one step — an hour of silence on a sparse onset
        stream appends *nothing* instead of 3600 empty
        :class:`IntervalCounts`.
        """
        if self._current_start is None:
            self._current_start = self._align(time)
            return
        if time < self._current_start + self.interval:
            return
        if self._current:
            self._close_interval()
        aligned = self._align(time)
        if aligned > self._current_start:
            self._current_start = aligned

    def _align(self, time: float) -> float:
        return (time // self.interval) * self.interval

    def _close_interval(self) -> None:
        assert self._current_start is not None
        end = self._current_start + self.interval
        snapshot = IntervalCounts(self._current_start, end, dict(self._current))
        self.closed.append(snapshot)
        self.totals.record(end, snapshot.total)
        self._current = {}
        self._current_start = end

    def flush(self, now: float, close_partial: bool = False) -> None:
        """Close any interval that has fully elapsed by ``now``.

        With ``close_partial=True`` the still-open trailing interval is
        also closed, as ``[start, now)`` — call this once at the end of
        a run, or onsets from the final sub-interval are never counted
        (they sat in the open histogram forever).  A later observation
        simply starts a fresh aligned interval.
        """
        if self._current_start is None:
            return
        self._roll_to(now)
        if close_partial and self._current and now > self._current_start:
            snapshot = IntervalCounts(self._current_start, now,
                                      dict(self._current))
            self.closed.append(snapshot)
            self.totals.record(now, snapshot.total)
            self._current = {}
            self._current_start = None

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def frequencies_over(self, threshold: int) -> list[tuple[float, float]]:
        """``(interval_start, frequency)`` pairs where a frequency was
        heard more than ``threshold`` times in one interval — the heavy
        hitter rule."""
        hits = []
        for interval in self.closed:
            for frequency, count in sorted(interval.counts.items()):
                if count > threshold:
                    hits.append((interval.start, frequency))
        return hits

    def intervals_with_distinct_over(self, threshold: int) -> list[IntervalCounts]:
        """Intervals where more than ``threshold`` distinct frequencies
        were heard — the scan/superspreader rule."""
        return [
            interval for interval in self.closed if interval.distinct > threshold
        ]

    def count_history(self, frequency: float) -> TimeSeries:
        """Per-interval count series for one frequency."""
        series = TimeSeries(f"tone_counter.{frequency:.0f}Hz")
        for interval in self.closed:
            series.record(interval.end, interval.counts.get(frequency, 0))
        return series


class ToneEventBus:
    """An audio-free stand-in for the controller's subscription surface.

    Duck-types the slice of :class:`~repro.core.controller.MDNController`
    the telemetry apps use — ``watch(frequencies, on_detection=...,
    on_onset=...)`` and ``on_window(callback)`` — but is fed synthetic
    tone presence (e.g. from a workload
    :class:`~repro.net.workload.PresenceSink`) instead of microphone
    capture.  The *real* detector-app logic runs unchanged against it,
    which is how precision/recall is measured at populations far beyond
    what the acoustic pipeline can render.

    Events are buffered as they are pushed and delivered by
    :meth:`dispatch`, grouped into capture windows of ``window``
    seconds: per-event detection callbacks, onset callbacks with the
    controller's suppression rule (a tone present in the immediately
    preceding window is not a new onset), then whole-window callbacks
    with the window's *end* time — matching ``MDNController``'s
    dispatch order and timing.
    """

    def __init__(self, window: float = 0.1) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._detection_subscribers: dict[float, list] = {}
        self._onset_subscribers: dict[float, list] = {}
        self._window_subscribers: list = []
        self._pending_frequencies: list[np.ndarray] = []
        self._pending_times: list[np.ndarray] = []
        self._prev_slot: int | None = None
        self._prev_present: set[float] = set()
        self.events_dispatched = 0
        self.windows_dispatched = 0

    # -- the MDNController surface the apps use ------------------------

    def watch(self, frequencies, on_detection=None, on_onset=None) -> None:
        if on_detection is None and on_onset is None:
            raise ValueError("need at least one callback")
        for frequency in frequencies:
            key = float(frequency)
            if on_detection is not None:
                self._detection_subscribers.setdefault(key, []).append(
                    on_detection
                )
            if on_onset is not None:
                self._onset_subscribers.setdefault(key, []).append(on_onset)

    def on_window(self, callback) -> None:
        self._window_subscribers.append(callback)

    def start(self) -> None:
        """Parity no-op: there is no listen loop to arm."""

    # -- feeding -------------------------------------------------------

    def push(self, frequency: float, time: float) -> None:
        """Buffer one tone presence."""
        self._pending_frequencies.append(
            np.asarray([frequency], dtype=np.float64)
        )
        self._pending_times.append(np.asarray([time], dtype=np.float64))

    def push_batch(self, frequencies: np.ndarray, times: np.ndarray) -> None:
        """Buffer a batch of tone presences (parallel arrays)."""
        if len(frequencies) != len(times):
            raise ValueError("frequencies and times must be parallel")
        if len(frequencies):
            self._pending_frequencies.append(
                np.asarray(frequencies, dtype=np.float64)
            )
            self._pending_times.append(np.asarray(times, dtype=np.float64))

    # -- delivery ------------------------------------------------------

    def dispatch(self, level_db: float = 70.0) -> int:
        """Deliver everything buffered, in capture-window order.

        Call at quiescent points (typically once, after the run): all
        pending events are grouped by window slot, each window's events
        are dispatched oldest-window first, and onset suppression is
        tracked across calls.  Returns the number of events delivered.
        """
        if not self._pending_times:
            return 0
        frequencies = np.concatenate(self._pending_frequencies)
        times = np.concatenate(self._pending_times)
        self._pending_frequencies = []
        self._pending_times = []

        slots = np.floor_divide(times, self.window).astype(np.int64)
        order = np.lexsort((frequencies, slots))
        frequencies, slots = frequencies[order], slots[order]
        unique_slots, group_starts = np.unique(slots, return_index=True)
        bounds = list(group_starts) + [len(slots)]

        delivered = 0
        for index, slot in enumerate(unique_slots.tolist()):
            group = frequencies[bounds[index]:bounds[index + 1]]
            window_start = slot * self.window
            events = [
                DetectionEvent(f, f, level_db, window_start)
                for f in dict.fromkeys(group.tolist())
            ]
            prior = (self._prev_present
                     if self._prev_slot is not None
                     and slot == self._prev_slot + 1 else set())
            for event in events:
                for callback in self._detection_subscribers.get(
                        event.frequency, ()):
                    callback(event)
                if event.frequency not in prior:
                    for callback in self._onset_subscribers.get(
                            event.frequency, ()):
                        callback(event)
            window_end = window_start + self.window
            for callback in self._window_subscribers:
                callback(events, window_end)
            self._prev_slot = slot
            self._prev_present = {event.frequency for event in events}
            delivered += len(events)
            self.windows_dispatched += 1
        self.events_dispatched += delivered
        return delivered
