"""Music-Defined Networking — a full reproduction of Hogan & Esposito,
HotNets 2018.

Sound as an out-of-band network management channel: switches and
servers emit (or passively produce) tones; a listening controller runs
FFTs over microphone captures, maps frequencies back to network events,
and triggers management actions.

Quick tour::

    from repro import (
        Simulator, AcousticChannel, Microphone, Speaker,
        FrequencyPlan, MusicAgent, MDNController,
    )

Subpackages
-----------
``repro.audio``
    Acoustic substrate: synthesis, channel, capture, FFT/mel analysis.
``repro.net``
    Discrete-event network simulator: hosts, switches, links, SDN
    control channel.
``repro.fans``
    Server fan acoustics and the datacenter/office scenes.
``repro.core``
    The paper's contribution: Music Protocol, frequency planning, the
    MDN controller, and the six applications.
``repro.baselines``
    Comparators: count-min sketch, ECN, in-band management.
"""

from .audio import (
    AcousticChannel,
    AudioSignal,
    FrequencyDetector,
    Microphone,
    Position,
    Speaker,
    SpectrumAnalyzer,
    ToneSpec,
)
from .core import (
    FrequencyPlan,
    MDNController,
    MusicAgent,
    MusicProtocolMessage,
    StateMachine,
    ToneCounter,
    sequence_machine,
)
from .fans import FanModel, Server, datacenter_scene, office_scene
from .net import (
    ControlChannel,
    FlowKey,
    Host,
    Packet,
    Simulator,
    Switch,
    Topology,
    linear_topology,
    rhombus_topology,
    single_switch_topology,
)

__version__ = "1.0.0"

__all__ = [
    "AcousticChannel",
    "AudioSignal",
    "ControlChannel",
    "FanModel",
    "FlowKey",
    "FrequencyDetector",
    "FrequencyPlan",
    "Host",
    "MDNController",
    "Microphone",
    "MusicAgent",
    "MusicProtocolMessage",
    "Packet",
    "Position",
    "Server",
    "Simulator",
    "Speaker",
    "SpectrumAnalyzer",
    "StateMachine",
    "Switch",
    "ToneCounter",
    "ToneSpec",
    "Topology",
    "datacenter_scene",
    "linear_topology",
    "office_scene",
    "rhombus_topology",
    "sequence_machine",
    "single_switch_topology",
]
