"""Core audio sample container used throughout the acoustic substrate.

Every stage of the Music-Defined Networking pipeline — tone synthesis,
channel propagation, microphone capture, FFT analysis — exchanges audio
as an :class:`AudioSignal`: a 1-D float64 numpy array of pressure
samples paired with a sample rate.  Amplitudes are linear pressure
units where 1.0 corresponds to the reference level ``FULL_SCALE_DB``
(decibels of sound pressure level), so dB arithmetic used by the paper
("sounds of at least 30 dB", "datacenter noise may exceed 85 dBA") maps
directly onto sample magnitudes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Sample rate used by default across the testbed (Hz).  16 kHz covers
#: the paper's working band (hundreds of Hz to a few kHz) with margin
#: and keeps FFT windows small, matching the sub-millisecond processing
#: times of Figure 2b.
DEFAULT_SAMPLE_RATE = 16_000

#: Sound pressure level, in dB SPL, that a full-scale (amplitude 1.0)
#: sample represents.  94 dB SPL is the standard microphone calibration
#: reference (1 Pa RMS).
FULL_SCALE_DB = 94.0

#: Floor returned for silent signals instead of ``-inf``.
SILENCE_DB = -120.0


def db_to_amplitude(level_db: float) -> float:
    """Convert a sound pressure level in dB SPL to linear amplitude.

    ``FULL_SCALE_DB`` maps to amplitude 1.0; every -20 dB divides the
    amplitude by 10.
    """
    return 10.0 ** ((level_db - FULL_SCALE_DB) / 20.0)


def amplitude_to_db(amplitude: float) -> float:
    """Convert a linear amplitude to dB SPL (inverse of
    :func:`db_to_amplitude`)."""
    if amplitude <= 0.0:
        return SILENCE_DB
    return FULL_SCALE_DB + 20.0 * math.log10(amplitude)


@dataclass(frozen=True)
class AudioSignal:
    """An immutable span of audio samples.

    Parameters
    ----------
    samples:
        1-D float array of linear pressure samples.
    sample_rate:
        Samples per second.
    """

    samples: np.ndarray
    sample_rate: int = DEFAULT_SAMPLE_RATE

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1:
            raise ValueError(f"samples must be 1-D, got shape {samples.shape}")
        if self.sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {self.sample_rate}")
        # Bypass the frozen guard once, during construction only.
        object.__setattr__(self, "samples", samples)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def silence(cls, duration: float, sample_rate: int = DEFAULT_SAMPLE_RATE) -> "AudioSignal":
        """A zero signal lasting ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        count = int(round(duration * sample_rate))
        return cls(np.zeros(count), sample_rate)

    @classmethod
    def from_components(
        cls, components: "list[AudioSignal]", sample_rate: int = DEFAULT_SAMPLE_RATE
    ) -> "AudioSignal":
        """Mix a list of signals sample-wise, padding shorter ones with
        silence.  An empty list yields an empty signal."""
        if not components:
            return cls(np.zeros(0), sample_rate)
        for part in components:
            if part.sample_rate != sample_rate:
                raise ValueError(
                    f"component sample rate {part.sample_rate} != {sample_rate}"
                )
        length = max(len(part) for part in components)
        total = np.zeros(length)
        for part in components:
            total[: len(part)] += part.samples
        return cls(total, sample_rate)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Length of the signal in seconds."""
        return len(self.samples) / self.sample_rate

    def rms(self) -> float:
        """Root-mean-square amplitude (0.0 for an empty signal)."""
        if len(self.samples) == 0:
            return 0.0
        return float(np.sqrt(np.mean(np.square(self.samples))))

    def level_db(self) -> float:
        """RMS level in dB SPL (``SILENCE_DB`` for silence)."""
        return amplitude_to_db(self.rms())

    def peak(self) -> float:
        """Largest absolute sample value."""
        if len(self.samples) == 0:
            return 0.0
        return float(np.max(np.abs(self.samples)))

    # ------------------------------------------------------------------
    # Transformations (all return new signals)
    # ------------------------------------------------------------------

    def mix(self, other: "AudioSignal") -> "AudioSignal":
        """Sample-wise sum with another signal (shorter one is padded)."""
        return AudioSignal.from_components([self, other], self.sample_rate)

    def scale(self, gain: float) -> "AudioSignal":
        """Multiply every sample by ``gain``."""
        return AudioSignal(self.samples * gain, self.sample_rate)

    def attenuate_db(self, loss_db: float) -> "AudioSignal":
        """Reduce the level by ``loss_db`` decibels."""
        return self.scale(10.0 ** (-loss_db / 20.0))

    def concat(self, other: "AudioSignal") -> "AudioSignal":
        """Append another signal after this one."""
        if other.sample_rate != self.sample_rate:
            raise ValueError(
                f"cannot concat signals with sample rates "
                f"{self.sample_rate} and {other.sample_rate}"
            )
        return AudioSignal(
            np.concatenate([self.samples, other.samples]), self.sample_rate
        )

    def slice_time(self, start: float, end: float) -> "AudioSignal":
        """Extract the sub-signal between ``start`` and ``end`` seconds.

        Bounds are clamped to the signal; a window entirely outside the
        signal yields an empty signal.
        """
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        lo = max(0, int(round(start * self.sample_rate)))
        hi = min(len(self.samples), int(round(end * self.sample_rate)))
        if hi <= lo:
            return AudioSignal(np.zeros(0), self.sample_rate)
        return AudioSignal(self.samples[lo:hi], self.sample_rate)

    def frames(self, frame_duration: float, hop_duration: float | None = None):
        """Iterate over successive analysis frames.

        Parameters
        ----------
        frame_duration:
            Frame length in seconds.
        hop_duration:
            Stride between frame starts; defaults to ``frame_duration``
            (non-overlapping frames).

        Yields
        ------
        tuple[float, AudioSignal]
            ``(start_time, frame)`` pairs.  The trailing partial frame
            is dropped, matching fixed-size capture buffers.
        """
        if frame_duration <= 0:
            raise ValueError("frame_duration must be positive")
        hop = frame_duration if hop_duration is None else hop_duration
        if hop <= 0:
            raise ValueError("hop_duration must be positive")
        frame_len = int(round(frame_duration * self.sample_rate))
        hop_len = int(round(hop * self.sample_rate))
        start = 0
        while start + frame_len <= len(self.samples):
            yield (
                start / self.sample_rate,
                AudioSignal(self.samples[start : start + frame_len], self.sample_rate),
            )
            start += hop_len

    def frame_matrix(
        self, frame_duration: float, hop_duration: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All analysis frames at once, as a strided matrix.

        The vectorized counterpart of :meth:`frames`: the same frame
        boundaries (trailing partial frame dropped), but returned as a
        zero-copy ``(T, N)`` view built with ``sliding_window_view`` so
        batch analysis (one 2-D FFT, one Goertzel matmul) can process
        every frame without a Python loop.

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(times, frames)`` — frame start times, shape ``(T,)``,
            and a read-only view of the frame samples, shape ``(T, N)``
            where ``N`` is the frame length in samples.  When the
            signal is shorter than one frame, ``times`` is empty and
            ``frames`` has shape ``(0, N)`` so downstream consumers
            still see a consistent frame length.
        """
        if frame_duration <= 0:
            raise ValueError("frame_duration must be positive")
        hop = frame_duration if hop_duration is None else hop_duration
        if hop <= 0:
            raise ValueError("hop_duration must be positive")
        frame_len = int(round(frame_duration * self.sample_rate))
        hop_len = max(int(round(hop * self.sample_rate)), 1)
        if frame_len < 1 or len(self.samples) < frame_len:
            return np.zeros(0), np.zeros((0, max(frame_len, 0)))
        frames = np.lib.stride_tricks.sliding_window_view(
            self.samples, frame_len
        )[::hop_len]
        # (i * hop_len) / rate, not i * (hop_len / rate): bit-identical
        # to the start times :meth:`frames` yields.
        times = (np.arange(len(frames)) * hop_len) / self.sample_rate
        return times, frames
