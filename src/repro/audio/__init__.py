"""Acoustic substrate: synthesis, propagation, capture and analysis.

This package is the simulated replacement for the paper's physical
audio path (speakers + air + microphones + pyaudio); see DESIGN.md §2
for the substitution rationale.
"""

from .channel import (
    SPEED_OF_SOUND,
    AcousticChannel,
    NoiseBed,
    Position,
    ScheduledTone,
    propagation_loss_db,
)
from .detector import (
    DEFAULT_THRESHOLD_DB,
    DEFAULT_TOLERANCE_HZ,
    DetectionEvent,
    FrequencyDetector,
)
from .devices import DeviceCapabilityError, Microphone, Speaker
from .exposure import ExposureMeter, ExposureReport
from .fft import (
    SpectralPeak,
    Spectrum,
    SpectrumAnalyzer,
    bandpass_filter,
    hann_taper,
    power_spectrogram,
    power_spectrogram_reference,
)
from .goertzel import GoertzelBank, GoertzelResult, goertzel_magnitude
from .mel import (
    dominant_mel_track,
    hz_to_mel,
    mel_filterbank,
    mel_spectrogram,
    mel_to_hz,
)
from .modem import (
    FskReceiver,
    FskTransmitter,
    ModemConfig,
    ModemError,
    default_modem_config,
)
from .noise import (
    SongNoise,
    band_noise,
    brown_noise,
    datacenter_ambience,
    hvac_hum,
    office_ambience,
    pink_noise,
    white_noise,
)
from .wav import read_wav, write_wav
from .signal import (
    DEFAULT_SAMPLE_RATE,
    FULL_SCALE_DB,
    SILENCE_DB,
    AudioSignal,
    amplitude_to_db,
    db_to_amplitude,
)
from .synth import (
    DEFAULT_RAMP,
    MAX_SIGNALLING_RAMP,
    ToneSpec,
    chirp,
    harmonic_tone,
    raised_cosine_envelope,
    signalling_ramp,
    sine_tone,
    tone_sequence,
)

__all__ = [
    "AcousticChannel",
    "AudioSignal",
    "DEFAULT_RAMP",
    "DEFAULT_SAMPLE_RATE",
    "DEFAULT_THRESHOLD_DB",
    "DEFAULT_TOLERANCE_HZ",
    "DetectionEvent",
    "DeviceCapabilityError",
    "ExposureMeter",
    "ExposureReport",
    "FULL_SCALE_DB",
    "FrequencyDetector",
    "FskReceiver",
    "FskTransmitter",
    "ModemConfig",
    "ModemError",
    "GoertzelBank",
    "GoertzelResult",
    "Microphone",
    "NoiseBed",
    "Position",
    "SILENCE_DB",
    "SPEED_OF_SOUND",
    "ScheduledTone",
    "SongNoise",
    "Speaker",
    "SpectralPeak",
    "Spectrum",
    "SpectrumAnalyzer",
    "ToneSpec",
    "amplitude_to_db",
    "band_noise",
    "bandpass_filter",
    "brown_noise",
    "chirp",
    "datacenter_ambience",
    "db_to_amplitude",
    "default_modem_config",
    "dominant_mel_track",
    "goertzel_magnitude",
    "hann_taper",
    "harmonic_tone",
    "hvac_hum",
    "hz_to_mel",
    "mel_filterbank",
    "mel_spectrogram",
    "mel_to_hz",
    "office_ambience",
    "pink_noise",
    "power_spectrogram",
    "power_spectrogram_reference",
    "propagation_loss_db",
    "raised_cosine_envelope",
    "read_wav",
    "signalling_ramp",
    "sine_tone",
    "tone_sequence",
    "white_noise",
    "write_wav",
]
