"""Mel-scale analysis: the spectrograms of Figures 3b, 4, 5 and 6.

Every spectrogram the paper shows is mel-scaled ("Frequency values in
the spectrogram are normalized by the mel-scale", Figure 5; the port
scan's "clear logarithmic line ... merely given by the Mel-scale on the
y-axis", §5).  This module provides the HTK mel conversion, triangular
mel filterbanks and mel spectrograms over that basis.
"""

from __future__ import annotations

import numpy as np

from .fft import SpectrumAnalyzer, power_spectrogram
from .signal import AudioSignal


def hz_to_mel(frequency_hz: float | np.ndarray) -> float | np.ndarray:
    """Convert Hz to mel (HTK formula: ``2595 * log10(1 + f/700)``)."""
    return 2595.0 * np.log10(1.0 + np.asarray(frequency_hz, dtype=float) / 700.0)


def mel_to_hz(mel: float | np.ndarray) -> float | np.ndarray:
    """Convert mel back to Hz (inverse of :func:`hz_to_mel`)."""
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=float) / 2595.0) - 1.0)


def mel_filterbank(
    num_filters: int,
    fft_frequencies: np.ndarray,
    low_hz: float = 0.0,
    high_hz: float | None = None,
) -> np.ndarray:
    """Triangular mel filterbank matrix.

    Parameters
    ----------
    num_filters:
        Number of mel bands.
    fft_frequencies:
        Bin centre frequencies of the linear spectrum the filterbank
        will be applied to.
    low_hz, high_hz:
        Band edges; ``high_hz`` defaults to the top FFT frequency.

    Returns
    -------
    numpy.ndarray
        Shape ``(num_filters, len(fft_frequencies))`` weight matrix.
    """
    if num_filters < 1:
        raise ValueError("num_filters must be >= 1")
    if len(fft_frequencies) == 0:
        return np.zeros((num_filters, 0))
    top = float(fft_frequencies[-1]) if high_hz is None else high_hz
    if not 0 <= low_hz < top:
        raise ValueError(f"invalid mel band [{low_hz}, {top}]")
    mel_edges = np.linspace(hz_to_mel(low_hz), hz_to_mel(top), num_filters + 2)
    hz_edges = mel_to_hz(mel_edges)
    bank = np.zeros((num_filters, len(fft_frequencies)))
    for index in range(num_filters):
        left, centre, right = hz_edges[index : index + 3]
        rising = (fft_frequencies - left) / max(centre - left, 1e-9)
        falling = (right - fft_frequencies) / max(right - centre, 1e-9)
        bank[index] = np.clip(np.minimum(rising, falling), 0.0, None)
    return bank


def mel_spectrogram(
    signal: AudioSignal,
    num_filters: int = 64,
    frame_duration: float = 0.05,
    hop_duration: float | None = None,
    low_hz: float = 0.0,
    high_hz: float | None = None,
    analyzer: SpectrumAnalyzer | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mel-scaled magnitude spectrogram.

    Returns
    -------
    (times, mel_center_hz, mel_magnitudes):
        ``times`` — frame start times, shape ``(T,)``;
        ``mel_center_hz`` — centre frequency (Hz) of each mel band,
        shape ``(M,)``;
        ``mel_magnitudes`` — band magnitudes, shape ``(T, M)``.
    """
    times, frequencies, magnitudes = power_spectrogram(
        signal, frame_duration, hop_duration, analyzer
    )
    if len(frequencies) == 0:
        # Degenerate frame length: no bins to build a filterbank over.
        return times, np.zeros(0), np.zeros((len(times), num_filters))
    # power_spectrogram is shape-consistent even for signals shorter
    # than one frame (times empty, frequencies full), so the filterbank
    # and band centres are always well defined.
    bank = mel_filterbank(num_filters, frequencies, low_hz, high_hz)
    mel_mags = magnitudes @ bank.T
    top = float(frequencies[-1]) if high_hz is None else high_hz
    mel_edges = np.linspace(hz_to_mel(low_hz), hz_to_mel(top), num_filters + 2)
    centres = mel_to_hz(mel_edges[1:-1])
    return times, np.asarray(centres), mel_mags


def dominant_mel_track(
    times: np.ndarray, mel_center_hz: np.ndarray, mel_magnitudes: np.ndarray
) -> np.ndarray:
    """Per-frame frequency (Hz) of the strongest mel band.

    Used to characterize spectrogram shape programmatically — e.g. the
    port-scan experiments assert this track is monotonically increasing
    (the "clear logarithmic line" of Figure 4c).
    """
    if len(times) == 0:
        return np.zeros(0)
    strongest = np.argmax(mel_magnitudes, axis=1)
    return mel_center_hz[strongest]
