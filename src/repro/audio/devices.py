"""Speakers and microphones: the physical endpoints of the sound channel.

The paper uses "low-cost speakers, microphones and Raspberry Pis" (§1)
with empirically observed limits: a ~30 ms minimum tone length, a 20 Hz
frequency separability floor, a 30 dB minimum emission level, and a
usable budget of roughly 1000 simultaneous frequencies in the audible
band (§3, §5).  These classes encode those hardware envelopes so
higher layers can validate Music Protocol messages against them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .channel import AcousticChannel, Position
from .signal import DEFAULT_SAMPLE_RATE, AudioSignal, db_to_amplitude
from .synth import ToneSpec


class DeviceCapabilityError(ValueError):
    """A tone request exceeds what the device can physically produce."""


@dataclass
class Speaker:
    """A cheap speaker attached to a network device.

    Attributes
    ----------
    position:
        Where the speaker sits in the room.
    min_frequency, max_frequency:
        Reproducible band, Hz.  Cheap drivers roll off below ~100 Hz
        and the paper stays in the audible range.
    max_level_db:
        Loudest tone the driver can produce, dB SPL at 1 m.
    min_duration:
        Shortest tone the hardware can gate cleanly; the paper measured
        ~30 ms on its testbed.
    """

    position: Position = field(default_factory=Position)
    min_frequency: float = 100.0
    max_frequency: float = 8_000.0
    max_level_db: float = 90.0
    min_duration: float = 0.03

    def validate(self, spec: ToneSpec) -> None:
        """Raise :class:`DeviceCapabilityError` if the tone is unplayable."""
        if not self.min_frequency <= spec.frequency <= self.max_frequency:
            raise DeviceCapabilityError(
                f"frequency {spec.frequency} Hz outside speaker band "
                f"[{self.min_frequency}, {self.max_frequency}]"
            )
        if spec.duration < self.min_duration:
            raise DeviceCapabilityError(
                f"duration {spec.duration * 1000:.1f} ms below speaker "
                f"minimum {self.min_duration * 1000:.1f} ms"
            )
        if spec.level_db > self.max_level_db:
            raise DeviceCapabilityError(
                f"level {spec.level_db} dB exceeds speaker maximum "
                f"{self.max_level_db} dB"
            )

    def play(
        self, channel: AcousticChannel, start_time: float, spec: ToneSpec
    ) -> None:
        """Validate then schedule a tone on the channel."""
        self.validate(spec)
        channel.play_tone(start_time, spec, self.position)


@dataclass
class Microphone:
    """A microphone capturing from an :class:`AcousticChannel`.

    Attributes
    ----------
    position:
        Where the capsule sits.
    sample_rate:
        Capture rate.
    self_noise_db:
        Electrical noise floor the capsule adds, dB SPL equivalent.
    seed:
        Seed for the self-noise generator, so captures are reproducible
        while still differing between (seeded) microphones.
    """

    position: Position = field(default_factory=Position)
    sample_rate: int = DEFAULT_SAMPLE_RATE
    self_noise_db: float = 15.0
    seed: int = 0
    #: Optional capture fault model (repro.faults): applied to the
    #: finished capture (dead capsule → zeros, saturation → clipping).
    #: ``None`` leaves the record path untouched.
    fault_model: object | None = field(
        default=None, repr=False, compare=False
    )
    #: Memoized unit-variance self-noise per (start sample, length).
    #: Self-noise is already deterministic per (seed, start), so the
    #: cache only skips the generator when the same window is
    #: re-captured (array stations, repeated controller polls) — it
    #: cannot change what a capture sounds like.
    _noise_cache: OrderedDict = field(
        default_factory=OrderedDict, init=False, repr=False, compare=False
    )

    #: Bound on the per-microphone self-noise memo (windows).
    NOISE_CACHE_SIZE = 32

    def record(
        self, channel: AcousticChannel, start: float, end: float
    ) -> AudioSignal:
        """Capture the channel mixture over ``[start, end)``.

        Adds the capsule's own noise floor on top of whatever arrives
        through the air.  Self-noise is seeded per (seed, start) so
        repeated captures of the same window are identical but distinct
        windows are independent.  The clean mixture comes from the
        channel's vectorized (and window-memoized) render path.
        """
        if channel.sample_rate != self.sample_rate:
            raise ValueError(
                f"microphone rate {self.sample_rate} != channel rate "
                f"{channel.sample_rate}"
            )
        clean = channel.render_at(self.position, start, end)
        if len(clean) == 0:
            return clean
        key = (int(round(start * self.sample_rate)), len(clean))
        unit_noise = self._noise_cache.get(key)
        if unit_noise is None:
            rng = np.random.default_rng((self.seed, key[0]))
            unit_noise = rng.standard_normal(len(clean))
            unit_noise.setflags(write=False)
            self._noise_cache[key] = unit_noise
            if len(self._noise_cache) > self.NOISE_CACHE_SIZE:
                self._noise_cache.popitem(last=False)
        else:
            self._noise_cache.move_to_end(key)
        noise = unit_noise * db_to_amplitude(self.self_noise_db)
        capture = AudioSignal(clean.samples + noise, self.sample_rate)
        if self.fault_model is not None:
            capture = self.fault_model.transform_capture(capture, start, end)
        return capture
