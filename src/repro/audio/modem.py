"""Acoustic data transmission: an FSK modem over the tone channel.

Section 2 surveys "audio networking" for data transfer, noting its low
throughput ("it can take up to six seconds to send a 20 bytes packet
over a single hop") and that MDN focuses on the management plane
instead.  This module implements that data-plane capability anyway —
management operations occasionally need to move a few bytes (a config
digest, an alert payload), and the modem lets them ride the same
speakers.

Design: M-ary FSK.  Each symbol is one tone from a ``2**bits_per_symbol``
frequency alphabet drawn from a frequency plan block; a frame is::

    [preamble tone] [length byte] [payload bytes] [xor checksum byte]

symbols back to back, each ``symbol_duration`` long with a short gap.
Throughput at the defaults (4-FSK, 60 ms symbols, 15 ms gap) is
~26 bit/s — deliberately of the same order as the literature the paper
cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from .channel import AcousticChannel, Position
from .detector import FrequencyDetector
from .devices import Microphone, Speaker
from .signal import AudioSignal
from .synth import ToneSpec


class ModemError(ValueError):
    """Raised on framing/checksum violations during decode."""


@dataclass(frozen=True)
class ModemConfig:
    """Shared modulation parameters (both ends must agree).

    Attributes
    ----------
    frequencies:
        The symbol alphabet, lowest first.  Length must be a power of
        two; index = symbol value.  Allocate these from a
        :class:`~repro.core.frequency_plan.FrequencyPlan` block so the
        modem coexists with other MDN applications.
    preamble_frequency:
        A dedicated tone marking frame start (not in the alphabet).
    symbol_duration:
        Tone length per symbol, seconds.
    symbol_gap:
        Silence between symbols, seconds (lets the detector see
        distinct onsets for repeated symbols).
    level_db:
        Emission level.
    """

    frequencies: tuple[float, ...]
    preamble_frequency: float
    symbol_duration: float = 0.06
    symbol_gap: float = 0.015
    level_db: float = 70.0

    def __post_init__(self) -> None:
        size = len(self.frequencies)
        # Symbols must pack evenly into bytes: 1, 2 or 4 bits per
        # symbol (alphabets of 2, 4 or 16).  3-bit symbols (8-FSK)
        # would straddle byte boundaries and need a bit-stream framer.
        if size not in (2, 4, 16):
            raise ValueError(
                f"alphabet size must be 2, 4 or 16, got {size}"
            )
        if self.preamble_frequency in self.frequencies:
            raise ValueError("preamble frequency must not be in the alphabet")
        if self.symbol_duration <= 0 or self.symbol_gap < 0:
            raise ValueError("invalid symbol timing")

    @property
    def bits_per_symbol(self) -> int:
        return (len(self.frequencies) - 1).bit_length()

    @property
    def symbol_period(self) -> float:
        return self.symbol_duration + self.symbol_gap

    @property
    def bits_per_second(self) -> float:
        return self.bits_per_symbol / self.symbol_period

    def frame_airtime(self, payload_len: int) -> float:
        """Seconds of air one frame occupies (preamble + header +
        payload + checksum)."""
        symbols_per_byte = 8 // self.bits_per_symbol
        total_symbols = 1 + symbols_per_byte * (payload_len + 2)
        return total_symbols * self.symbol_period


def _bytes_to_symbols(data: bytes, bits: int) -> list[int]:
    symbols = []
    for byte in data:
        for shift in range(8 - bits, -1, -bits):
            symbols.append((byte >> shift) & ((1 << bits) - 1))
    return symbols


def _symbols_to_bytes(symbols: list[int], bits: int) -> bytes:
    per_byte = 8 // bits
    if len(symbols) % per_byte:
        raise ModemError(
            f"symbol count {len(symbols)} not a multiple of {per_byte}"
        )
    out = bytearray()
    for index in range(0, len(symbols), per_byte):
        value = 0
        for symbol in symbols[index : index + per_byte]:
            value = (value << bits) | symbol
        out.append(value)
    return bytes(out)


def _xor(data: bytes) -> int:
    value = 0
    for byte in data:
        value ^= byte
    return value


class FskTransmitter:
    """Speaker-side half: frames bytes into a tone schedule."""

    MAX_PAYLOAD = 255

    def __init__(self, config: ModemConfig, speaker: Speaker) -> None:
        self.config = config
        self.speaker = speaker

    def send(
        self, channel: AcousticChannel, start_time: float, payload: bytes
    ) -> float:
        """Schedule a frame; returns the time the frame ends on air."""
        if len(payload) > self.MAX_PAYLOAD:
            raise ValueError(f"payload too long ({len(payload)} bytes)")
        config = self.config
        frame = bytes([len(payload)]) + payload + bytes([
            _xor(bytes([len(payload)]) + payload)
        ])
        time = start_time
        self.speaker.play(
            channel, time,
            ToneSpec(config.preamble_frequency, config.symbol_duration,
                     config.level_db),
        )
        time += config.symbol_period
        for symbol in _bytes_to_symbols(frame, config.bits_per_symbol):
            self.speaker.play(
                channel, time,
                ToneSpec(config.frequencies[symbol], config.symbol_duration,
                         config.level_db),
            )
            time += config.symbol_period
        return time


class FskReceiver:
    """Microphone-side half: demodulates one frame from a capture.

    Offline decoder: capture the span covering the frame, then call
    :meth:`decode`.  (An online symbol-clock tracker would belong in a
    streaming receiver; the management-plane use cases here always know
    roughly when a frame was solicited.)
    """

    def __init__(self, config: ModemConfig) -> None:
        self.config = config
        watched = list(config.frequencies) + [config.preamble_frequency]
        self._detector = FrequencyDetector(watched)

    def decode(self, capture: AudioSignal, capture_start: float = 0.0) -> bytes:
        """Demodulate the first frame found in ``capture``.

        Raises :class:`ModemError` if no preamble is found, a symbol is
        unreadable, or the checksum fails.
        """
        config = self.config
        preamble_time = self._find_preamble(capture, capture_start)
        if preamble_time is None:
            raise ModemError("no preamble found")

        # Sample each symbol slot at its centre.
        symbols: list[int] = []
        slot = 1
        per_byte = 8 // config.bits_per_symbol

        def read_slot(slot_index: int) -> int:
            centre = (preamble_time + slot_index * config.symbol_period
                      + config.symbol_duration / 2.0)
            lo = centre - config.symbol_duration / 2.2
            hi = centre + config.symbol_duration / 2.2
            window = capture.slice_time(lo - capture_start, hi - capture_start)
            events = self._detector.detect(window)
            events = [e for e in events
                      if e.frequency != config.preamble_frequency]
            if not events:
                raise ModemError(f"unreadable symbol in slot {slot_index}")
            strongest = max(events, key=lambda e: e.level_db)
            return config.frequencies.index(strongest.frequency)

        # Length byte first.
        for _ in range(per_byte):
            symbols.append(read_slot(slot))
            slot += 1
        length = _symbols_to_bytes(symbols, config.bits_per_symbol)[0]

        remaining = (length + 1) * per_byte  # payload + checksum
        for _ in range(remaining):
            symbols.append(read_slot(slot))
            slot += 1

        frame = _symbols_to_bytes(symbols, config.bits_per_symbol)
        payload, checksum = frame[1:-1], frame[-1]
        if _xor(frame[:-1]) != checksum:
            raise ModemError("checksum mismatch")
        return payload

    def _find_preamble(
        self, capture: AudioSignal, capture_start: float
    ) -> float | None:
        """Scan for the preamble tone; returns its absolute start time."""
        config = self.config
        step = config.symbol_duration / 4.0
        time = capture_start
        end = capture_start + capture.duration
        while time + config.symbol_duration <= end:
            window = capture.slice_time(
                time - capture_start,
                time - capture_start + config.symbol_duration,
            )
            events = self._detector.detect(window)
            if any(e.frequency == config.preamble_frequency for e in events):
                # Refine: back up to where the preamble begins.
                return self._refine_preamble_start(capture, capture_start,
                                                   time)
            time += step
        return None

    def _refine_preamble_start(
        self, capture: AudioSignal, capture_start: float, coarse: float
    ) -> float:
        """Align the symbol clock: slide a window around the coarse hit
        and take the offset where the preamble tone's energy peaks
        (matched-filter style) — that window is centred on the tone."""
        from .goertzel import goertzel_magnitude

        config = self.config
        fine = config.symbol_duration / 32.0
        best_time = coarse
        best_magnitude = -1.0
        time = max(capture_start, coarse - config.symbol_duration)
        stop = coarse + config.symbol_duration
        while time + config.symbol_duration <= capture_start + capture.duration \
                and time <= stop:
            window = capture.slice_time(
                time - capture_start,
                time - capture_start + config.symbol_duration,
            )
            magnitude = goertzel_magnitude(window, config.preamble_frequency)
            if magnitude > best_magnitude:
                best_magnitude = magnitude
                best_time = time
            time += fine
        return best_time


def default_modem_config(
    allocation,
    symbol_duration: float = 0.06,
    min_spacing_hz: float = 40.0,
) -> ModemConfig:
    """Build a 4-FSK config from a frequency-plan allocation.

    Symbols this short need at least ~40 Hz between alphabet tones
    (a 60 ms tone's mainlobe covers a 20 Hz grid slot on each side), so
    the allocation is subsampled to ``min_spacing_hz``: from a 20 Hz
    plan, pass a block of >= 9 slots; from a 40 Hz plan, >= 5.
    The first selected frequency is the preamble, the next four the
    alphabet.
    """
    frequencies = list(allocation.frequencies)
    selected = [frequencies[0]]
    for frequency in frequencies[1:]:
        if frequency - selected[-1] >= min_spacing_hz - 1e-9:
            selected.append(frequency)
        if len(selected) == 5:
            break
    if len(selected) < 5:
        raise ValueError(
            f"allocation spans too few frequencies for a modem at "
            f"{min_spacing_hz} Hz spacing: got {len(selected)}/5 usable "
            f"from {len(frequencies)} slots"
        )
    return ModemConfig(
        frequencies=tuple(selected[1:5]),
        preamble_frequency=selected[0],
        symbol_duration=symbol_duration,
    )
