"""Sound exposure accounting: the §3 operator-comfort concern.

"Scaling an MDN application to even a medium size datacenter may result
in environments that are even more uncomfortable for operators, who
must already wear noise canceling headphones."  This module quantifies
that cost: an :class:`ExposureMeter` samples the sound level at an
operator's position over a run and reports the standard occupational
metrics — Leq (energy-averaged level), L_max, and the fraction of time
above an annoyance threshold — so deployments can budget their acoustic
footprint the way they budget link capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.stats import TimeSeries
from .channel import AcousticChannel, Position
from .devices import Microphone
from .signal import SILENCE_DB


@dataclass
class ExposureReport:
    """Occupational-noise summary of a listening position."""

    leq_db: float            #: energy-averaged level over the run
    l_max_db: float          #: loudest sample window
    fraction_above: float    #: share of windows above the threshold
    threshold_db: float
    duration: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Leq {self.leq_db:.1f} dB, Lmax {self.l_max_db:.1f} dB, "
                f"{self.fraction_above:.0%} of time above "
                f"{self.threshold_db:.0f} dB over {self.duration:.0f} s")


class ExposureMeter:
    """Samples sound levels at a position over simulated time.

    Parameters
    ----------
    channel:
        The air to measure.
    position:
        Where the operator stands.
    window:
        Measurement window length, seconds.
    threshold_db:
        Annoyance threshold for the time-above metric.  Normal
        conversation is ~50 dB (the paper cites it); sustained levels
        above ~55 dB are widely treated as disruptive for focused work.
    """

    def __init__(
        self,
        channel: AcousticChannel,
        position: Position,
        window: float = 0.25,
        threshold_db: float = 55.0,
        seed: int = 0,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.channel = channel
        self.position = position
        self.window = window
        self.threshold_db = threshold_db
        # An ideal (noiseless) measurement instrument: the meter reports
        # what the room does, not what a capsule adds.
        self._microphone = Microphone(position, channel.sample_rate,
                                      self_noise_db=SILENCE_DB, seed=seed)
        self.levels = TimeSeries("exposure.level_db")

    def sample(self, time: float) -> float:
        """Measure one window ending at ``time``; returns its dB level."""
        capture = self._microphone.record(
            self.channel, max(0.0, time - self.window), time
        )
        level = capture.level_db()
        self.levels.record(time, level)
        return level

    def measure(self, start: float, end: float) -> ExposureReport:
        """Sweep ``[start, end]`` in window steps and summarize."""
        if end <= start:
            raise ValueError("end must be after start")
        time = start + self.window
        while time <= end + 1e-9:
            self.sample(time)
            time += self.window
        return self.report()

    def report(self) -> ExposureReport:
        """Summarize everything sampled so far."""
        if not self.levels.values:
            return ExposureReport(SILENCE_DB, SILENCE_DB, 0.0,
                                  self.threshold_db, 0.0)
        values = np.array(self.levels.values, dtype=float)
        # Leq: average in the energy domain, not the dB domain.
        energies = 10.0 ** (values / 10.0)
        leq = 10.0 * np.log10(np.mean(energies))
        above = float(np.mean(values > self.threshold_db))
        duration = self.levels.times[-1] - self.levels.times[0] + self.window
        return ExposureReport(
            leq_db=float(leq),
            l_max_db=float(np.max(values)),
            fraction_above=above,
            threshold_db=self.threshold_db,
            duration=duration,
        )
