"""Tone synthesis: the speaker-side half of Music-Defined Networking.

The paper drives cheap speakers from Raspberry Pis attached to Zodiac FX
switches.  A Music Protocol message tells the Pi *frequency*, *duration*
and *intensity*; the Pi then plays a tone.  This module synthesizes those
tones.

Two details matter for faithful reproduction:

* **Envelopes.**  A rectangular (hard on/off) tone has sinc-shaped
  sidelobes that smear energy into neighbouring FFT bins.  The paper
  found a 20 Hz guard between frequencies sufficient; that only works
  when tones are shaped.  We apply a raised-cosine attack/release ramp
  by default.

* **Calibration.**  Intensity is expressed in dB SPL so the "at least
  30 dB" requirement from Section 3 and the "85 dBA datacenter" noise
  level live on the same scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .signal import DEFAULT_SAMPLE_RATE, AudioSignal, db_to_amplitude

#: Default raised-cosine attack/release ramp, seconds.  5 ms keeps
#: 30 ms tones (the shortest the paper's testbed produced) mostly flat.
DEFAULT_RAMP = 0.005

#: Ramp cap for adaptive shaping, seconds.
MAX_SIGNALLING_RAMP = 0.025

#: Fraction of the tone duration devoted to each ramp under adaptive
#: shaping.  0.25 makes a short tone fully Hann-shaped (ramps meet in
#: the middle at duration/4 each side of a half-length plateau).
SIGNALLING_RAMP_FRACTION = 0.25


def signalling_ramp(duration: float) -> float:
    """The adaptive ramp used for Music Protocol tones.

    Short tones need aggressive shaping: a 50 ms rectangular-ish tone
    has envelope sidelobes every 20 Hz at only ~-13 dB, which lands
    exactly on the paper's 20 Hz frequency grid and cross-triggers
    neighbouring plan slots.  Ramping 25% of the duration on each side
    pushes everything beyond ±40 Hz below -27 dB (below -45 dB past
    ±60 Hz), at the cost of a slightly wider mainlobe.  See DESIGN.md
    §5 ("tone envelope").
    """
    return min(MAX_SIGNALLING_RAMP, duration * SIGNALLING_RAMP_FRACTION)


@lru_cache(maxsize=1024)
def _cached_envelope(num_samples: int, ramp_len: int) -> np.ndarray:
    """Memoized raised-cosine envelope, keyed by (length, ramp length).

    The channel render hot path re-applies the same handful of
    envelopes (one per distinct tone duration on the frequency plan) to
    every overlapping capture window, so envelopes are built once and
    shared.  Cached arrays are read-only; callers that need to mutate
    must copy.
    """
    envelope = np.ones(num_samples)
    if ramp_len > 0:
        ramp_curve = 0.5 * (1.0 - np.cos(np.linspace(0.0, np.pi, ramp_len)))
        envelope[:ramp_len] = ramp_curve
        envelope[num_samples - ramp_len :] = ramp_curve[::-1]
    envelope.setflags(write=False)
    return envelope


def raised_cosine_envelope(
    num_samples: int, sample_rate: int, ramp: float = DEFAULT_RAMP
) -> np.ndarray:
    """An amplitude envelope with raised-cosine attack and release.

    The ramp is shortened automatically when the tone is too short to
    fit two full ramps.  Returns a cached, read-only array (the render
    hot path reuses one envelope per ``(tone length, ramp length)``).
    """
    if num_samples <= 0:
        return np.zeros(0)
    ramp_len = min(int(round(ramp * sample_rate)), num_samples // 2)
    return _cached_envelope(num_samples, ramp_len)


def sine_tone(
    frequency: float,
    duration: float,
    level_db: float = 60.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    phase: float = 0.0,
    ramp: float = DEFAULT_RAMP,
) -> AudioSignal:
    """Synthesize a pure tone.

    Parameters
    ----------
    frequency:
        Tone frequency in Hz; must sit below the Nyquist limit.
    duration:
        Tone length in seconds.
    level_db:
        RMS sound pressure level in dB SPL.
    phase:
        Initial phase in radians.
    ramp:
        Raised-cosine attack/release duration in seconds (0 disables
        shaping and produces a rectangular tone).
    """
    if frequency <= 0:
        raise ValueError(f"frequency must be positive, got {frequency}")
    if frequency >= sample_rate / 2:
        raise ValueError(
            f"frequency {frequency} Hz exceeds Nyquist limit for "
            f"sample rate {sample_rate}"
        )
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    count = int(round(duration * sample_rate))
    t = np.arange(count) / sample_rate
    # RMS of a sine is amplitude / sqrt(2); compensate so level_db is RMS.
    amplitude = db_to_amplitude(level_db) * np.sqrt(2.0)
    samples = amplitude * np.sin(2.0 * np.pi * frequency * t + phase)
    samples *= raised_cosine_envelope(count, sample_rate, ramp)
    return AudioSignal(samples, sample_rate)


def harmonic_tone(
    fundamental: float,
    duration: float,
    level_db: float = 60.0,
    harmonic_rolloff_db: float = 6.0,
    num_harmonics: int = 4,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    ramp: float = DEFAULT_RAMP,
) -> AudioSignal:
    """A tone with a harmonic series, as produced by real small speakers.

    Harmonic ``k`` sits at ``k * fundamental`` and is attenuated by
    ``(k - 1) * harmonic_rolloff_db`` dB relative to the fundamental.
    Harmonics above Nyquist are skipped.
    """
    if num_harmonics < 1:
        raise ValueError("num_harmonics must be >= 1")
    parts = []
    for k in range(1, num_harmonics + 1):
        freq = fundamental * k
        if freq >= sample_rate / 2:
            break
        parts.append(
            sine_tone(
                freq,
                duration,
                level_db - (k - 1) * harmonic_rolloff_db,
                sample_rate,
                ramp=ramp,
            )
        )
    return AudioSignal.from_components(parts, sample_rate)


def chirp(
    start_frequency: float,
    end_frequency: float,
    duration: float,
    level_db: float = 60.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    ramp: float = DEFAULT_RAMP,
) -> AudioSignal:
    """A linear frequency sweep between two frequencies.

    Used by tests as a worst-case interferer that crosses every band.
    """
    for freq in (start_frequency, end_frequency):
        if freq <= 0 or freq >= sample_rate / 2:
            raise ValueError(f"chirp frequency {freq} out of range")
    if duration <= 0:
        raise ValueError("duration must be positive")
    count = int(round(duration * sample_rate))
    t = np.arange(count) / sample_rate
    sweep_rate = (end_frequency - start_frequency) / duration
    phase = 2.0 * np.pi * (start_frequency * t + 0.5 * sweep_rate * t * t)
    amplitude = db_to_amplitude(level_db) * np.sqrt(2.0)
    samples = amplitude * np.sin(phase)
    samples *= raised_cosine_envelope(count, sample_rate, ramp)
    return AudioSignal(samples, sample_rate)


@dataclass(frozen=True)
class ToneSpec:
    """A tone request: what a Music Protocol message asks a speaker to play.

    Attributes
    ----------
    frequency:
        Tone frequency, Hz.
    duration:
        Tone duration, seconds.
    level_db:
        Emission level at the speaker, dB SPL.
    """

    frequency: float
    duration: float
    level_db: float = 60.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def render(
        self, sample_rate: int = DEFAULT_SAMPLE_RATE, ramp: float | None = None
    ) -> AudioSignal:
        """Synthesize the tone this spec describes.

        Uses the adaptive signalling ramp by default (see
        :func:`signalling_ramp`); pass ``ramp`` to override.
        """
        return sine_tone(
            self.frequency, self.duration, self.level_db, sample_rate,
            ramp=signalling_ramp(self.duration) if ramp is None else ramp,
        )


def tone_sequence(
    specs: list[ToneSpec],
    gap: float = 0.01,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
) -> AudioSignal:
    """Render a melody: tones played back-to-back with ``gap`` seconds
    of silence between them.  This is the "music" in Music-Defined
    Networking — e.g. the three-knock authentication sequence of §4."""
    if gap < 0:
        raise ValueError("gap must be non-negative")
    if not specs:
        return AudioSignal(np.zeros(0), sample_rate)
    pieces = []
    silence = AudioSignal.silence(gap, sample_rate)
    for index, spec in enumerate(specs):
        if index > 0 and gap > 0:
            pieces.append(silence)
        pieces.append(spec.render(sample_rate))
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.concat(piece)
    return result
