"""WAV import/export: listen to Music-Defined Networking.

Every experiment in this reproduction produces real audio —
``AudioSignal`` arrays a speaker could play.  This module writes them
to standard 16-bit PCM WAV files (stdlib ``wave`` only) so you can
actually *hear* a port knock, a queue congesting, or a server dying,
and reads WAVs back so recorded real-world audio can be pushed through
the same detectors.
"""

from __future__ import annotations

import wave
from pathlib import Path

import numpy as np

from .signal import AudioSignal

#: Peak sample magnitude written as full-scale 16-bit PCM.
_PCM_FULL_SCALE = 32767


def write_wav(
    signal: AudioSignal,
    path: str | Path,
    normalize: bool = True,
    peak_fraction: float = 0.9,
) -> Path:
    """Write a signal to a 16-bit mono PCM WAV file.

    Parameters
    ----------
    signal:
        The audio to write.
    path:
        Output file path (created/overwritten).
    normalize:
        Scale so the loudest sample sits at ``peak_fraction`` of full
        scale.  Simulation signals are calibrated in pressure units
        (1.0 = 94 dB SPL) and are usually tiny in linear terms, so
        normalization is on by default; pass False to preserve the
        absolute calibration (clipping anything above 1.0).
    """
    if len(signal) == 0:
        raise ValueError("cannot write an empty signal")
    if not 0 < peak_fraction <= 1.0:
        raise ValueError("peak_fraction must be in (0, 1]")
    samples = signal.samples
    if normalize:
        peak = float(np.max(np.abs(samples)))
        if peak > 0:
            samples = samples * (peak_fraction / peak)
    samples = np.clip(samples, -1.0, 1.0)
    pcm = (samples * _PCM_FULL_SCALE).astype("<i2")

    path = Path(path)
    with wave.open(str(path), "wb") as handle:
        handle.setnchannels(1)
        handle.setsampwidth(2)
        handle.setframerate(signal.sample_rate)
        handle.writeframes(pcm.tobytes())
    return path


def read_wav(path: str | Path) -> AudioSignal:
    """Read a mono (or first-channel-of-stereo) PCM WAV file.

    Returns samples scaled to [-1, 1]; apply your own calibration to
    map onto dB SPL if the recording's reference level is known.
    """
    path = Path(path)
    with wave.open(str(path), "rb") as handle:
        channels = handle.getnchannels()
        width = handle.getsampwidth()
        rate = handle.getframerate()
        frames = handle.readframes(handle.getnframes())
    if width == 2:
        data = np.frombuffer(frames, dtype="<i2").astype(np.float64)
        data /= _PCM_FULL_SCALE
    elif width == 1:  # 8-bit WAV is unsigned
        data = np.frombuffer(frames, dtype=np.uint8).astype(np.float64)
        data = (data - 128.0) / 127.0
    else:
        raise ValueError(f"unsupported sample width {width} bytes")
    if channels > 1:
        data = data.reshape(-1, channels)[:, 0].copy()
    return AudioSignal(data, rate)
