"""FFT spectrum analysis — the listening half of Music-Defined Networking.

The paper's controller "uses the Fast Fourier Transform to process
multiple sounds captured by the listening device and to identify the
frequencies played by a switch" (Figure 2).  This module provides the
windowed-FFT pipeline: magnitude spectra, noise-floor estimation, peak
picking with parabolic interpolation, and a timed analysis entry point
used to regenerate Figure 2b's processing-time CDF.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .signal import SILENCE_DB, AudioSignal, amplitude_to_db


@lru_cache(maxsize=None)
def hann_taper(count: int) -> tuple[np.ndarray, float]:
    """Cached Hann taper and coherent-gain factor for one window length.

    The listening loop analyzes a stream of identically sized capture
    windows, so the taper and its coherent gain (``sum(taper)/count``,
    the factor that keeps magnitudes RMS-calibrated) are computed once
    per length and shared by the FFT and Goertzel backends.  The
    returned array is read-only; callers must not mutate it.
    """
    taper = np.hanning(count)
    taper.setflags(write=False)
    gain = float(np.sum(taper)) / count if count else 1.0
    return taper, gain


@lru_cache(maxsize=None)
def one_sided_scale(n_fft: int) -> np.ndarray:
    """Cached one-sided amplitude correction per rfft bin.

    Interior bins of a one-sided spectrum carry half the sinusoid's
    energy (the other half lives in the mirrored negative bin), hence
    the x-sqrt(2) RMS correction.  The DC bin and — for even FFT
    lengths — the Nyquist bin have no mirror, so the correction must
    not be applied there or their levels are over-reported by sqrt(2).
    """
    scale = np.full(n_fft // 2 + 1, math.sqrt(2.0))
    scale[0] = 1.0
    if n_fft % 2 == 0 and len(scale) > 1:
        scale[-1] = 1.0
    scale.setflags(write=False)
    return scale


@dataclass(frozen=True)
class Spectrum:
    """A one-sided magnitude spectrum of an analysis window.

    Attributes
    ----------
    frequencies:
        Bin centre frequencies, Hz (ascending).
    magnitudes:
        Linear RMS-calibrated magnitude per bin (same pressure units as
        :class:`~repro.audio.signal.AudioSignal` samples).
    sample_rate:
        Sample rate of the analysed window.
    window_duration:
        Length of the analysed window, seconds.
    """

    frequencies: np.ndarray
    magnitudes: np.ndarray
    sample_rate: int
    window_duration: float

    @property
    def bin_width(self) -> float:
        """Frequency resolution in Hz (spacing between bins)."""
        if len(self.frequencies) < 2:
            return 0.0
        return float(self.frequencies[1] - self.frequencies[0])

    def magnitude_at(self, frequency: float) -> float:
        """Linear magnitude of the bin nearest ``frequency``."""
        if len(self.frequencies) == 0:
            return 0.0
        index = int(np.argmin(np.abs(self.frequencies - frequency)))
        return float(self.magnitudes[index])

    def level_at(self, frequency: float) -> float:
        """dB SPL level of the bin nearest ``frequency``."""
        return amplitude_to_db(self.magnitude_at(frequency))

    def band_power(self, low_hz: float, high_hz: float) -> float:
        """Total power (sum of squared magnitudes) in ``[low_hz, high_hz]``."""
        mask = (self.frequencies >= low_hz) & (self.frequencies <= high_hz)
        return float(np.sum(np.square(self.magnitudes[mask])))

    def noise_floor(self) -> float:
        """Robust estimate of the broadband noise magnitude.

        The median bin magnitude is insensitive to a handful of strong
        tonal peaks, which is what makes detection *noise-relative*:
        thresholds are set in dB above this floor rather than at an
        absolute level (see DESIGN.md §5).
        """
        if len(self.magnitudes) == 0:
            return 0.0
        return float(np.median(self.magnitudes))

    def noise_floor_db(self) -> float:
        """The noise floor in dB SPL."""
        floor = self.noise_floor()
        return amplitude_to_db(floor) if floor > 0 else SILENCE_DB


@dataclass(frozen=True)
class SpectralPeak:
    """A detected spectral peak.

    Attributes
    ----------
    frequency:
        Interpolated peak frequency, Hz.
    magnitude:
        Linear magnitude at the peak.
    prominence_db:
        Height of the peak above the spectrum's noise floor, dB.
    """

    frequency: float
    magnitude: float
    prominence_db: float

    @property
    def level_db(self) -> float:
        return amplitude_to_db(self.magnitude)


class SpectrumAnalyzer:
    """Windowed-FFT analyzer with Hann weighting and peak picking.

    Parameters
    ----------
    window:
        Window function name: ``"hann"`` (default) or ``"rect"``.
    zero_pad_factor:
        FFT length multiplier (>= 1).  Padding interpolates the
        spectrum, sharpening frequency estimates without changing true
        resolution.
    """

    def __init__(self, window: str = "hann", zero_pad_factor: int = 1) -> None:
        if window not in ("hann", "rect"):
            raise ValueError(f"unknown window {window!r}")
        if zero_pad_factor < 1:
            raise ValueError("zero_pad_factor must be >= 1")
        self.window = window
        self.zero_pad_factor = zero_pad_factor

    def analyze(self, signal: AudioSignal) -> Spectrum:
        """Compute the one-sided magnitude spectrum of a window."""
        count = len(signal)
        if count == 0:
            empty = np.zeros(0)
            return Spectrum(empty, empty.copy(), signal.sample_rate, 0.0)
        frequencies, magnitudes = self.analyze_block(
            signal.samples[np.newaxis, :], signal.sample_rate
        )
        return Spectrum(
            frequencies, magnitudes[0], signal.sample_rate, signal.duration
        )

    def analyze_block(
        self, frames: np.ndarray, sample_rate: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-sided magnitude spectra of a batch of equal-length frames.

        Parameters
        ----------
        frames:
            Sample matrix of shape ``(T, N)`` — ``T`` analysis windows
            of ``N`` samples each (e.g. from
            :meth:`AudioSignal.frame_matrix`).
        sample_rate:
            Sample rate of the frames, Hz.

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(frequencies, magnitudes)`` — bin frequencies, shape
            ``(F,)``, and RMS-calibrated magnitudes, shape ``(T, F)``.
            Each row equals :meth:`analyze` of the corresponding frame.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got shape {frames.shape}")
        count = frames.shape[1]
        if count == 0:
            return np.zeros(0), np.zeros((frames.shape[0], 0))
        if self.window == "hann":
            taper, gain = hann_taper(count)
            # Coherent gain compensation keeps magnitudes calibrated.
            frames = frames * taper
        else:
            gain = 1.0
        n_fft = count * self.zero_pad_factor
        spectra = np.fft.rfft(frames, n=n_fft, axis=-1)
        frequencies = np.fft.rfftfreq(n_fft, 1.0 / sample_rate)
        # Calibrate so a sinusoid of RMS level r reports magnitude r at
        # its bin: |rfft| at the bin is (peak * count * gain / 2), and
        # peak = r * sqrt(2), hence the sqrt(2)/(count*gain) factor.
        # DC and Nyquist have no mirrored bin, so sqrt(2) is skipped
        # there (see one_sided_scale).
        magnitudes = np.abs(spectra) * (one_sided_scale(n_fft) / (count * gain))
        return frequencies, magnitudes

    def find_peaks(
        self,
        spectrum: Spectrum,
        threshold_db: float = 10.0,
        min_frequency: float = 0.0,
        max_frequency: float | None = None,
        max_peaks: int | None = None,
    ) -> list[SpectralPeak]:
        """Locate tonal peaks standing ``threshold_db`` above the noise floor.

        Peaks are local maxima refined with three-point parabolic
        interpolation, returned sorted by descending magnitude.
        """
        mags = spectrum.magnitudes
        freqs = spectrum.frequencies
        if len(mags) < 3:
            return []
        floor = max(spectrum.noise_floor(), 1e-12)
        min_magnitude = floor * 10.0 ** (threshold_db / 20.0)
        high_limit = max_frequency if max_frequency is not None else freqs[-1]

        candidates = np.where(
            (mags[1:-1] > mags[:-2])
            & (mags[1:-1] >= mags[2:])
            & (mags[1:-1] >= min_magnitude)
        )[0] + 1

        peaks = []
        for index in candidates:
            freq = freqs[index]
            if not min_frequency <= freq <= high_limit:
                continue
            left, centre, right = mags[index - 1], mags[index], mags[index + 1]
            denominator = left - 2.0 * centre + right
            if denominator != 0.0:
                offset = 0.5 * (left - right) / denominator
                offset = float(np.clip(offset, -0.5, 0.5))
            else:
                offset = 0.0
            refined = freq + offset * spectrum.bin_width
            prominence = 20.0 * np.log10(centre / floor)
            peaks.append(SpectralPeak(float(refined), float(centre), float(prominence)))

        peaks.sort(key=lambda p: p.magnitude, reverse=True)
        if max_peaks is not None:
            peaks = peaks[:max_peaks]
        return peaks

    def timed_analyze(self, signal: AudioSignal) -> tuple[Spectrum, float]:
        """Analyze a window and report elapsed wall-clock seconds.

        This is the measurement behind Figure 2b: the paper reports
        that ~90% of ~50 ms samples were processed in <= 0.35 ms.
        """
        start = time.perf_counter()
        spectrum = self.analyze(signal)
        elapsed = time.perf_counter() - start
        return spectrum, elapsed


def bandpass_filter(
    signal: AudioSignal, low_hz: float, high_hz: float
) -> AudioSignal:
    """Zero-phase FFT brick-wall band-pass.

    Keeps only ``[low_hz, high_hz]``; used to isolate a known tone
    (e.g. before TDOA correlation) without introducing group delay.
    """
    if not 0 <= low_hz < high_hz:
        raise ValueError(f"invalid band [{low_hz}, {high_hz}]")
    if len(signal) == 0:
        return signal
    spectrum = np.fft.rfft(signal.samples)
    frequencies = np.fft.rfftfreq(len(signal), 1.0 / signal.sample_rate)
    spectrum[(frequencies < low_hz) | (frequencies > high_hz)] = 0.0
    return AudioSignal(np.fft.irfft(spectrum, len(signal)),
                       signal.sample_rate)


def power_spectrogram(
    signal: AudioSignal,
    frame_duration: float = 0.05,
    hop_duration: float | None = None,
    analyzer: SpectrumAnalyzer | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Short-time magnitude spectrogram of a signal.

    Returns
    -------
    (times, frequencies, magnitudes):
        ``times`` — frame start times (seconds), shape ``(T,)``;
        ``frequencies`` — bin frequencies (Hz), shape ``(F,)``;
        ``magnitudes`` — linear magnitudes, shape ``(T, F)``.

    All frames are analyzed with one batched 2-D rfft over a strided
    frame matrix (no per-frame Python loop).  When the signal is
    shorter than one frame the result is shape-consistent: ``times`` is
    empty, but ``frequencies`` still describes the ``F`` bins a full
    frame would produce and ``magnitudes`` has shape ``(0, F)``, so
    consumers such as :func:`~repro.audio.mel.mel_spectrogram` can
    build their filterbanks unconditionally.
    """
    analyzer = analyzer or SpectrumAnalyzer()
    times, frames = signal.frame_matrix(frame_duration, hop_duration)
    if frames.shape[1] == 0:
        return np.zeros(0), np.zeros(0), np.zeros((0, 0))
    frequencies, magnitudes = analyzer.analyze_block(frames, signal.sample_rate)
    return times, frequencies, magnitudes


def power_spectrogram_reference(
    signal: AudioSignal,
    frame_duration: float = 0.05,
    hop_duration: float | None = None,
    analyzer: SpectrumAnalyzer | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-frame-loop spectrogram, kept as the scalar reference.

    Same contract as :func:`power_spectrogram` for non-empty results;
    the equivalence suite and micro-benchmarks compare the batched path
    against this implementation.
    """
    analyzer = analyzer or SpectrumAnalyzer()
    times = []
    rows = []
    frequencies = np.zeros(0)
    for start, frame in signal.frames(frame_duration, hop_duration):
        spectrum = analyzer.analyze(frame)
        frequencies = spectrum.frequencies
        times.append(start)
        rows.append(spectrum.magnitudes)
    if not rows:
        return np.zeros(0), np.zeros(0), np.zeros((0, 0))
    return np.array(times), frequencies, np.vstack(rows)
