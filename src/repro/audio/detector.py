"""Known-frequency detection: turning captured audio into events.

The MDN controller always listens for a *known* set of frequencies —
its frequency plan tells it which tones each switch may play (§3: "Each
switch in our testbed was assigned a unique set of frequencies").  The
:class:`FrequencyDetector` matches spectral energy in a capture window
against that watch list and reports :class:`DetectionEvent`s.

Two interchangeable backends exercise the ablation described in
DESIGN.md §5:

* ``"fft"`` — one windowed FFT per capture, peaks matched against the
  watch list within a tolerance;
* ``"goertzel"`` — a Goertzel bank evaluated only at the watched
  frequencies (cheaper for small watch lists).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from .. import obs
from ..infra.cache import spectrum_fingerprint
from .fft import Spectrum, SpectrumAnalyzer
from .goertzel import GoertzelBank, GoertzelResult
from .signal import AudioSignal

#: The paper's empirical separability limit between adjacent tones.
DEFAULT_TOLERANCE_HZ = 10.0

#: How far above the per-window noise floor a tone must stand.
DEFAULT_THRESHOLD_DB = 10.0

#: Absolute minimum received level for a valid detection.  §3: "in our
#: experiments we played sounds of at least 30 dB"; anything quieter is
#: treated as leakage or noise.
DEFAULT_MIN_LEVEL_DB = 30.0

#: A candidate peak this many dB below a stronger peak nearby is
#: rejected as a window/envelope sidelobe of that peak.  Short tones
#: cut by the capture-window boundary smear up to ~-16 dB of energy
#: into ±40 Hz sidebands, so the margin is 15 dB.  The flip side is a
#: near-far limit: a genuine tone more than 15 dB quieter than a
#: simultaneous neighbour within ``SIDELOBE_RADIUS_HZ`` is masked —
#: inherent to any shared acoustic medium, and the reason the paper
#: assigns *disjoint per-switch frequency sets* rather than relying on
#: level separation.
SIDELOBE_REJECTION_DB = 15.0

#: Radius, in Hz, within which sidelobe rejection applies.
SIDELOBE_RADIUS_HZ = 120.0


@dataclass(frozen=True)
class DetectionEvent:
    """One watched frequency heard in one capture window.

    Attributes
    ----------
    frequency:
        The *watched* frequency that matched (Hz) — i.e. the plan
        entry, not the raw spectral estimate.
    measured_frequency:
        The spectral estimate that matched it (Hz).
    level_db:
        Received level of the tone, dB SPL.
    time:
        Capture-window start time, seconds (simulation clock).
    epoch:
        Frequency-plan epoch the tone is attributed to (0 until a
        spectrum migration ever commits).  During a make-before-break
        handover, a tone heard on a *pre-migration* frequency carries
        the epoch it was emitted under while ``frequency`` already
        names its relocated plan entry — so no event is lost or
        misattributed across a PLAN_COMMIT boundary.
    """

    frequency: float
    measured_frequency: float
    level_db: float
    time: float
    epoch: int = 0


class FrequencyDetector:
    """Matches capture windows against a watch list of frequencies.

    Parameters
    ----------
    watched_frequencies:
        The frequencies the listening application cares about.
    tolerance_hz:
        Maximum |measured − watched| distance for a match.  Defaults to
        half the paper's 20 Hz guard spacing, so adjacent plan entries
        can never both claim one peak.
    threshold_db:
        Required prominence above the window's noise floor.
    backend:
        ``"fft"`` or ``"goertzel"``.  The Goertzel bank evaluates only
        the watched bins and has no peak structure to reject smear
        with, so tones cut by window boundaries can bleed into a 20 Hz
        neighbour's bin; plans driving a Goertzel deployment should use
        a 40 Hz guard (the FFT backend resolves 20 Hz).
    spectrum_sink:
        Optional ``callback(spectrum, time)`` invoked with every window
        spectrum the FFT backend computes during :meth:`detect` —
        *before* events are returned.  This is how the interference
        sentinel (:mod:`repro.core.spectrum`) estimates per-band noise
        occupancy from spectra the detector already paid for, with no
        extra FFTs.  ``None`` (the default) costs a single ``is not
        None`` check per window.
    spectra_cache:
        Optional :class:`repro.infra.SpectraCache`: window spectra are
        memoized by content fingerprint, so a second detector analyzing
        the same capture (co-located listeners sharing a microphone)
        reuses the transform instead of recomputing it.  FFT backend
        only; ``None`` (the default) costs one ``is not None`` check
        per window.  The sink still fires per *detect call*, cached or
        not — every consumer sees every window.
    """

    def __init__(
        self,
        watched_frequencies: list[float],
        tolerance_hz: float = DEFAULT_TOLERANCE_HZ,
        threshold_db: float = DEFAULT_THRESHOLD_DB,
        min_level_db: float = DEFAULT_MIN_LEVEL_DB,
        backend: str = "fft",
        analyzer: SpectrumAnalyzer | None = None,
        spectrum_sink=None,
        spectra_cache=None,
    ) -> None:
        if not watched_frequencies:
            raise ValueError("watched_frequencies must not be empty")
        if tolerance_hz <= 0:
            raise ValueError("tolerance_hz must be positive")
        if backend not in ("fft", "goertzel"):
            raise ValueError(f"unknown backend {backend!r}")
        self.watched = sorted(set(float(f) for f in watched_frequencies))
        self.tolerance_hz = tolerance_hz
        self.threshold_db = threshold_db
        self.min_level_db = min_level_db
        self.backend = backend
        self._analyzer = analyzer or SpectrumAnalyzer(zero_pad_factor=2)
        self.spectrum_sink = spectrum_sink
        self.spectra_cache = spectra_cache
        if spectrum_sink is not None and backend != "fft":
            raise ValueError(
                "spectrum_sink requires the fft backend (the Goertzel "
                "bank computes no full spectrum)"
            )
        if spectra_cache is not None and backend != "fft":
            raise ValueError(
                "spectra_cache requires the fft backend (the Goertzel "
                "bank computes no full spectrum)"
            )
        self._goertzel = GoertzelBank(self.watched) if backend == "goertzel" else None
        # Observability (repro.obs).  Detectors are rebuilt whenever the
        # watch list changes, so the instruments are get-or-create on the
        # registry (shared across rebuilds) rather than per-instance.
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_detect_ms = self._obs.histogram("detector.detect_ms")
            self._m_windows = self._obs.counter("detector.windows")
            self._m_events = self._obs.counter("detector.events")

    def detect(self, window: AudioSignal, time: float = 0.0) -> list[DetectionEvent]:
        """Watched frequencies present in one capture window.

        Returns at most one event per watched frequency, sorted by
        ascending frequency.
        """
        if len(window) == 0:
            return []
        if self._obs is None:
            if self.backend == "goertzel":
                return self._detect_goertzel(window, time)
            return self._detect_fft(window, time)
        wall_start = _time.perf_counter()
        if self.backend == "goertzel":
            events = self._detect_goertzel(window, time)
        else:
            events = self._detect_fft(window, time)
        self._m_detect_ms.observe((_time.perf_counter() - wall_start) * 1e3)
        self._m_windows.inc()
        self._m_events.inc(len(events))
        return events

    def detect_stream(
        self,
        signal: AudioSignal,
        frame_duration: float = 0.05,
        hop_duration: float | None = None,
        start_time: float = 0.0,
    ) -> list[DetectionEvent]:
        """Detect over every analysis frame of a longer capture.

        The streaming counterpart of framing ``signal`` yourself and
        calling :meth:`detect` per frame — same events, same order —
        but all frames are analyzed in one batch: a strided frame
        matrix feeds either one 2-D rfft (FFT backend) or one Goertzel
        matmul plus one floor-probe matmul (Goertzel backend), and the
        taper/phasor caches are shared across the whole stream.  Event
        times are ``start_time`` plus each frame's offset; the trailing
        partial frame is dropped, like :meth:`AudioSignal.frames`.
        """
        times, frames = signal.frame_matrix(frame_duration, hop_duration)
        if len(times) == 0 or frames.shape[1] == 0:
            return []
        events: list[DetectionEvent] = []
        if self.backend == "goertzel":
            assert self._goertzel is not None
            magnitudes = self._goertzel.analyze_block(frames, signal.sample_rate)
            floors = self._goertzel.floor_block(frames, signal.sample_rate)
            watched = self._goertzel.frequencies
            for index, offset in enumerate(times):
                threshold = (
                    max(float(floors[index]), 1e-12)
                    * 10.0 ** (self.threshold_db / 20.0)
                )
                hits = [
                    GoertzelResult(freq, float(mag))
                    for freq, mag in zip(watched, magnitudes[index])
                    if mag >= threshold
                ]
                events.extend(
                    self._events_from_hits(hits, start_time + float(offset))
                )
        else:
            frequencies, magnitudes = self._analyzer.analyze_block(
                frames, signal.sample_rate
            )
            window_duration = frames.shape[1] / signal.sample_rate
            for index, offset in enumerate(times):
                spectrum = Spectrum(
                    frequencies, magnitudes[index], signal.sample_rate,
                    window_duration,
                )
                events.extend(
                    self._events_from_spectrum(spectrum, start_time + float(offset))
                )
        return events

    def _detect_fft(self, window: AudioSignal, time: float) -> list[DetectionEvent]:
        if self.spectra_cache is not None:
            key = spectrum_fingerprint(window, time, self._analyzer)
            spectrum = self.spectra_cache.get(key, time)
            if spectrum is None:
                spectrum = self._analyzer.analyze(window)
                self.spectra_cache.put(key, spectrum, time)
        else:
            spectrum = self._analyzer.analyze(window)
        if self.spectrum_sink is not None:
            self.spectrum_sink(spectrum, time)
        return self._events_from_spectrum(spectrum, time)

    def _events_from_spectrum(
        self, spectrum: Spectrum, time: float
    ) -> list[DetectionEvent]:
        peaks = self._analyzer.find_peaks(spectrum, self.threshold_db)
        peaks = self._reject_sidelobes(peaks)
        events: dict[float, DetectionEvent] = {}
        for peak in peaks:
            if peak.level_db < self.min_level_db:
                continue
            watched = self._match(peak.frequency)
            if watched is None:
                continue
            event = DetectionEvent(watched, peak.frequency, peak.level_db, time)
            existing = events.get(watched)
            if existing is None or event.level_db > existing.level_db:
                events[watched] = event
        return sorted(events.values(), key=lambda e: e.frequency)

    @staticmethod
    def _reject_sidelobes(peaks: list) -> list:
        """Drop peaks that are plausibly window sidelobes of a stronger
        nearby peak (see ``SIDELOBE_REJECTION_DB``)."""
        kept = []
        for peak in peaks:  # peaks arrive sorted by descending magnitude
            shadowed = any(
                abs(strong.frequency - peak.frequency) <= SIDELOBE_RADIUS_HZ
                and strong.level_db - peak.level_db >= SIDELOBE_REJECTION_DB
                for strong in kept
            )
            if not shadowed:
                kept.append(peak)
        return kept

    def _detect_goertzel(
        self, window: AudioSignal, time: float
    ) -> list[DetectionEvent]:
        assert self._goertzel is not None
        hits = self._goertzel.detect(window, self.threshold_db)
        return self._events_from_hits(hits, time)

    def _events_from_hits(
        self, hits: list[GoertzelResult], time: float
    ) -> list[DetectionEvent]:
        # The bank only evaluates watched frequencies, so sidelobe
        # leakage from a loud neighbour shows up *at* a watched bin;
        # apply the same relative rejection by level.
        hits = sorted(hits, key=lambda h: h.magnitude, reverse=True)
        kept = []
        for hit in hits:
            if hit.level_db < self.min_level_db:
                continue
            shadowed = any(
                abs(strong.frequency - hit.frequency) <= SIDELOBE_RADIUS_HZ
                and strong.level_db - hit.level_db >= SIDELOBE_REJECTION_DB
                for strong in kept
            )
            if not shadowed:
                kept.append(hit)
        return [
            DetectionEvent(hit.frequency, hit.frequency, hit.level_db, time)
            for hit in sorted(kept, key=lambda h: h.frequency)
        ]

    def _match(self, measured: float) -> float | None:
        """The watched frequency nearest ``measured``, if within tolerance."""
        best = min(self.watched, key=lambda f: abs(f - measured))
        if abs(best - measured) <= self.tolerance_hz:
            return best
        return None
