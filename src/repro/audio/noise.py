"""Noise sources for the acoustic channel.

The paper runs every detection experiment twice: once in a quiet room
and once with interference — either real datacenter ambience (fans,
HVAC, §7) or a popular song played as "random background noise"
(Sia's *Cheap Thrills*, Figure 4b/4d).

We reproduce both kinds of interference:

* **Stochastic noise** — white / pink / brown generators, band-limited
  noise, and an HVAC hum model, composed into datacenter and office
  ambience presets.
* **Song noise** — the actual song cannot be shipped, so
  :class:`SongNoise` generates an equivalent interferer: a seeded,
  beat-structured melody over a tempered scale with harmonics and
  vibrato.  What matters for the experiments is that the interference
  is *tonal, structured and non-stationary* and occupies the musical
  band, which is exactly what defeats naive absolute-threshold
  detectors (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .signal import DEFAULT_SAMPLE_RATE, AudioSignal, db_to_amplitude


def _scale_to_level(samples: np.ndarray, level_db: float) -> np.ndarray:
    """Rescale samples so their RMS equals ``level_db`` (dB SPL)."""
    rms = np.sqrt(np.mean(np.square(samples))) if len(samples) else 0.0
    if rms == 0.0:
        return samples
    return samples * (db_to_amplitude(level_db) / rms)


def white_noise(
    duration: float,
    level_db: float = 40.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """Flat-spectrum Gaussian noise at the given RMS level."""
    rng = rng or np.random.default_rng()
    count = int(round(duration * sample_rate))
    samples = rng.standard_normal(count)
    return AudioSignal(_scale_to_level(samples, level_db), sample_rate)


def pink_noise(
    duration: float,
    level_db: float = 40.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """1/f noise via spectral shaping — the usual model for room ambience."""
    rng = rng or np.random.default_rng()
    count = int(round(duration * sample_rate))
    if count == 0:
        return AudioSignal(np.zeros(0), sample_rate)
    spectrum = np.fft.rfft(rng.standard_normal(count))
    freqs = np.fft.rfftfreq(count, 1.0 / sample_rate)
    shaping = np.ones_like(freqs)
    nonzero = freqs > 0
    shaping[nonzero] = 1.0 / np.sqrt(freqs[nonzero])
    shaping[0] = 0.0
    samples = np.fft.irfft(spectrum * shaping, n=count)
    return AudioSignal(_scale_to_level(samples, level_db), sample_rate)


def brown_noise(
    duration: float,
    level_db: float = 40.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """1/f^2 noise (integrated white noise) — heavy low-frequency rumble."""
    rng = rng or np.random.default_rng()
    count = int(round(duration * sample_rate))
    if count == 0:
        return AudioSignal(np.zeros(0), sample_rate)
    samples = np.cumsum(rng.standard_normal(count))
    samples -= np.mean(samples)
    return AudioSignal(_scale_to_level(samples, level_db), sample_rate)


def band_noise(
    duration: float,
    low_hz: float,
    high_hz: float,
    level_db: float = 40.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """Noise whose energy is confined to ``[low_hz, high_hz]``.

    Built by zeroing the FFT of white noise outside the band, so the
    stop-band rejection is essentially perfect.
    """
    if not 0 <= low_hz < high_hz:
        raise ValueError(f"invalid band [{low_hz}, {high_hz}]")
    if high_hz > sample_rate / 2:
        raise ValueError(f"band edge {high_hz} exceeds Nyquist limit")
    rng = rng or np.random.default_rng()
    count = int(round(duration * sample_rate))
    if count == 0:
        return AudioSignal(np.zeros(0), sample_rate)
    spectrum = np.fft.rfft(rng.standard_normal(count))
    freqs = np.fft.rfftfreq(count, 1.0 / sample_rate)
    spectrum[(freqs < low_hz) | (freqs > high_hz)] = 0.0
    samples = np.fft.irfft(spectrum, n=count)
    return AudioSignal(_scale_to_level(samples, level_db), sample_rate)


def hvac_hum(
    duration: float,
    level_db: float = 55.0,
    mains_hz: float = 60.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """Air-handler hum: mains harmonics plus low-frequency rumble.

    Models the persistent tonal floor of machine rooms; energy is
    concentrated below ~400 Hz, well beneath the MDN signalling band.
    """
    rng = rng or np.random.default_rng()
    count = int(round(duration * sample_rate))
    t = np.arange(count) / sample_rate
    samples = np.zeros(count)
    for k, gain in ((1, 1.0), (2, 0.6), (3, 0.35), (4, 0.2)):
        phase = rng.uniform(0.0, 2.0 * np.pi)
        samples += gain * np.sin(2.0 * np.pi * mains_hz * k * t + phase)
    rumble = brown_noise(duration, level_db, sample_rate, rng)
    samples = _scale_to_level(samples, level_db) + 0.5 * rumble.samples
    return AudioSignal(_scale_to_level(samples, level_db), sample_rate)


# ----------------------------------------------------------------------
# Song noise — the Cheap-Thrills substitute
# ----------------------------------------------------------------------

#: A-minor pentatonic-ish pitch classes (MIDI note numbers modulo 12)
#: used for melody generation: sounds song-like without shipping a song.
_PENTATONIC = (0, 3, 5, 7, 10)


def _midi_to_hz(note: float) -> float:
    return 440.0 * 2.0 ** ((note - 69) / 12.0)


@dataclass
class SongNoise:
    """A deterministic pop-song-like interferer.

    Generates a beat-structured melody: notes drawn from a pentatonic
    scale around ``base_midi_note``, quantized to a 16th-note grid at
    ``tempo_bpm``, each note carrying harmonics and a little vibrato,
    over a soft percussive noise bed.  The result is tonal,
    non-stationary interference comparable to playing a pop song near
    the microphone (Figure 4b/4d's *Cheap Thrills* role).

    Attributes
    ----------
    tempo_bpm:
        Song tempo.  *Cheap Thrills* is ~90 BPM.
    base_midi_note:
        Melodic register centre (MIDI).  57 = A3 (220 Hz).
    level_db:
        Overall RMS level of the rendered song.
    seed:
        RNG seed; the same seed always yields the same "song".
    """

    tempo_bpm: float = 90.0
    base_midi_note: int = 57
    level_db: float = 55.0
    seed: int = 2018
    num_harmonics: int = 3
    vibrato_hz: float = 5.0
    vibrato_depth: float = 0.005

    def render(
        self, duration: float, sample_rate: int = DEFAULT_SAMPLE_RATE
    ) -> AudioSignal:
        """Render ``duration`` seconds of the song."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng(self.seed)
        count = int(round(duration * sample_rate))
        t = np.arange(count) / sample_rate
        samples = np.zeros(count)

        sixteenth = 60.0 / self.tempo_bpm / 4.0
        num_steps = int(np.ceil(duration / sixteenth))
        octave_offsets = (-12, 0, 0, 0, 12)
        current = float(self.base_midi_note)
        for step in range(num_steps):
            start = step * sixteenth
            if start >= duration:
                break
            # Rests on some steps keep the texture song-like.
            if rng.random() < 0.25:
                continue
            pitch_class = int(rng.choice(_PENTATONIC))
            octave = int(rng.choice(octave_offsets))
            current = self.base_midi_note + pitch_class + octave
            freq = _midi_to_hz(current)
            if freq >= sample_rate / 2:
                continue
            note_len = sixteenth * float(rng.choice((1, 1, 2, 4)))
            end = min(start + note_len, duration)
            lo = int(round(start * sample_rate))
            hi = int(round(end * sample_rate))
            if hi <= lo:
                continue
            local_t = t[lo:hi] - t[lo]
            vibrato = self.vibrato_depth * np.sin(
                2.0 * np.pi * self.vibrato_hz * local_t
            )
            note = np.zeros(hi - lo)
            for k in range(1, self.num_harmonics + 1):
                harmonic_freq = freq * k
                if harmonic_freq >= sample_rate / 2:
                    break
                note += (0.5 ** (k - 1)) * np.sin(
                    2.0 * np.pi * harmonic_freq * (1.0 + vibrato) * local_t
                )
            # Note envelope: fast attack, exponential decay.
            envelope = np.exp(-3.0 * local_t / max(note_len, 1e-6))
            attack = min(len(note), max(1, int(0.005 * sample_rate)))
            envelope[:attack] *= np.linspace(0.0, 1.0, attack)
            samples[lo:hi] += note * envelope

        # Percussive bed: a burst of band noise on each beat.
        beat = 60.0 / self.tempo_bpm
        burst_len = int(0.05 * sample_rate)
        num_beats = int(duration / beat) + 1
        for b in range(num_beats):
            lo = int(round(b * beat * sample_rate))
            hi = min(lo + burst_len, count)
            if hi <= lo:
                continue
            burst = rng.standard_normal(hi - lo)
            burst *= np.exp(-10.0 * np.arange(hi - lo) / sample_rate / 0.05)
            samples[lo:hi] += 0.3 * burst

        return AudioSignal(_scale_to_level(samples, self.level_db), sample_rate)


# ----------------------------------------------------------------------
# Ambience presets
# ----------------------------------------------------------------------


def office_ambience(
    duration: float,
    level_db: float = 45.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """Quiet office: low pink noise plus faint HVAC (§7, Figure 6c-d)."""
    rng = rng or np.random.default_rng()
    bed = pink_noise(duration, level_db, sample_rate, rng)
    hum = hvac_hum(duration, level_db - 10.0, sample_rate=sample_rate, rng=rng)
    return AudioSignal(
        _scale_to_level(bed.samples + hum.samples, level_db), sample_rate
    )


def datacenter_ambience(
    duration: float,
    level_db: float = 75.0,
    sample_rate: int = DEFAULT_SAMPLE_RATE,
    rng: np.random.Generator | None = None,
) -> AudioSignal:
    """Machine-room ambience: strong broadband fan wash plus HVAC.

    The paper cites datacenter noise "may exceed 85 dBA"; the default
    here is 75 dB at the microphone (the rack under test adds its own
    fans on top via :mod:`repro.fans`).
    """
    rng = rng or np.random.default_rng()
    wash = band_noise(duration, 100.0, sample_rate / 2 * 0.9, level_db,
                      sample_rate, rng)
    hum = hvac_hum(duration, level_db - 8.0, sample_rate=sample_rate, rng=rng)
    return AudioSignal(
        _scale_to_level(wash.samples + hum.samples, level_db), sample_rate
    )
