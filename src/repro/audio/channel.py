"""The air between speakers and microphones.

The paper's out-of-band channel is literal air: speakers bolted to
switches and servers, microphones near the MDN controller.  This module
models that medium deterministically so experiments are reproducible:

* **Emitters** are positioned in a room.  Tones are *scheduled* on the
  channel (start time + :class:`~repro.audio.synth.ToneSpec`), so the
  network simulator can chirp at simulated times and the microphone
  hears a causally consistent mixture.
* **Propagation** applies spherical spreading (−20·log10(d) dB relative
  to 1 m) and speed-of-sound delay.
* **Noise sources** are pre-rendered positioned signals (ambience,
  songs, fan wash) mixed into every capture.

Rendering is pull-based: nothing is synthesized until a microphone asks
for a window, and any window can be re-rendered bit-identically.

Rendering is also the synthesis-side hot path (DESIGN.md §5): every
``Microphone.record`` lands in :meth:`AcousticChannel.render_at`, and a
controller-scale study (XEXT9, up to 200 chirping devices) calls it
hundreds of times per simulated minute.  ``render_at`` therefore runs a
vectorized fast path built around

* an **interval index** over scheduled tones (parallel arrays sorted by
  end time, maintained incrementally by :meth:`play_tone` and
  :meth:`prune`), so a 50–100 ms capture bisects straight to the tones
  that can overlap the window instead of scanning the full history;
* **caches** for everything that is re-derived per window otherwise:
  raised-cosine envelopes (memoized in :mod:`repro.audio.synth`),
  per-``(listener, emitter)`` distance/delay/loss geometry, per-bed
  noise gains, and the ``arange`` ramps behind looping-bed index plans;
* **batched tone synthesis** that groups overlapping tone segments by
  length and evaluates all phases in a group with one broadcasted
  ``np.sin`` instead of one call per tone × echo tap;
* a bounded **window render memo** keyed by ``(listener, start, end)``
  so co-located microphone-array stations and repeated polls of the
  same window reuse the mixed buffer.  ``play_tone`` / ``add_noise`` /
  ``clear`` / ``prune`` invalidate the memo.

:meth:`render_at_reference` keeps the original per-tone scalar loop;
``tests/audio/test_channel_equivalence.py`` pins the fast path to it
within 1e-9 (bit-identical in practice — both paths evaluate the same
IEEE operations per sample in the same order).
"""

from __future__ import annotations

import math
import time as _time
from bisect import bisect_left, bisect_right, insort
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import obs
from .signal import DEFAULT_SAMPLE_RATE, AudioSignal, db_to_amplitude
from .synth import ToneSpec, raised_cosine_envelope, signalling_ramp

#: Speed of sound in air at ~20 °C, m/s.
SPEED_OF_SOUND = 343.0

#: Closest distance used for attenuation math; prevents the inverse
#: law from diverging when devices are modelled as co-located.
MIN_DISTANCE = 0.1

#: Propagation-delay allowance added to the prune keep-cutoff: the
#: flight time across a generous machine-room diagonal (~50 m), so a
#: tone whose *emission* ended before the cutoff but whose wavefront is
#: still crossing the room cannot be dropped mid-capture.
PRUNE_PROPAGATION_ALLOWANCE = 50.0 / SPEED_OF_SOUND

#: Window render memo capacity (windows).  128 comfortably covers a
#: microphone array's stations re-polling one shared window plus the
#: look-back of a few co-located listeners.
WINDOW_CACHE_SIZE = 128

#: Geometry cache flush threshold: (listener, emitter) position pairs.
GEOMETRY_CACHE_SIZE = 65536


@lru_cache(maxsize=256)
def _sample_ramp(count: int) -> np.ndarray:
    """A cached, read-only ``arange(count)`` used by index plans."""
    ramp = np.arange(count)
    ramp.setflags(write=False)
    return ramp


@dataclass(frozen=True)
class Position:
    """A point in the room, metres."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        return math.dist((self.x, self.y, self.z), (other.x, other.y, other.z))


def propagation_loss_db(distance: float) -> float:
    """Spherical-spreading loss relative to 1 m, in dB (>= 0)."""
    return max(0.0, 20.0 * math.log10(max(distance, MIN_DISTANCE)))


@dataclass(frozen=True)
class ScheduledTone:
    """A tone emission scheduled on the channel timeline."""

    start_time: float
    spec: ToneSpec
    position: Position

    @property
    def end_time(self) -> float:
        return self.start_time + self.spec.duration


@dataclass(frozen=True)
class NoiseBed:
    """A pre-rendered positioned noise signal.

    The signal loops if a capture window extends past its end, so a
    short rendered ambience can cover an arbitrarily long experiment.
    ``start`` anchors the bed's first sample at that emission time
    (default 0); a negative anchor lets a source pre-roll so its sound
    is already in flight when a capture begins at t = 0.
    """

    signal: AudioSignal
    position: Position
    loop: bool = True
    start: float = 0.0


class AcousticChannel:
    """The shared air: schedules emissions, renders microphone captures.

    Parameters
    ----------
    sample_rate:
        Sample rate used for all rendering.
    enable_propagation_delay:
        Model speed-of-sound delay (a few ms at room scale).  On by
        default; tests that want exact timing can disable it.
    echo_taps:
        Early-reflection model: each ``(extra_delay_s, extra_loss_db)``
        tap adds a delayed, attenuated copy of every tone (walls,
        racks, raised floors).  Real rooms smear tones in time; the
        detector must tolerate it.  Applies to point-source tones only
        — noise beds are already diffuse.
    """

    def __init__(
        self,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        enable_propagation_delay: bool = True,
        echo_taps: tuple[tuple[float, float], ...] = (),
    ) -> None:
        for delay, loss_db in echo_taps:
            if delay <= 0:
                raise ValueError(f"echo delay must be positive, got {delay}")
            if loss_db < 0:
                raise ValueError(f"echo loss must be >= 0 dB, got {loss_db}")
        self.sample_rate = sample_rate
        self.enable_propagation_delay = enable_propagation_delay
        self.echo_taps = tuple(echo_taps)
        self._max_echo_delay = max(
            (delay for delay, _loss in echo_taps), default=0.0
        )
        self._tones: list[ScheduledTone] = []
        self._noise_beds: list[NoiseBed] = []
        # Interval index: parallel arrays sorted by tone end time, plus
        # the schedule sequence number that keeps fast-path accumulation
        # in exact insertion order (the reference iteration order).
        self._index_ends: list[float] = []
        self._index_starts: list[float] = []
        self._index_entries: list[tuple[int, ScheduledTone]] = []
        #: ``np.asarray(self._index_starts)``, rebuilt lazily after the
        #: index changes; lets a render mask away not-yet-started tones
        #: in one vectorized comparison.
        self._index_starts_array: np.ndarray | None = None
        self._sequence = 0
        #: Reference counts of distinct emitter positions, used to bound
        #: the candidate horizon by the worst-case propagation delay.
        self._positions: dict[Position, int] = {}
        #: Bumped whenever the *set* of distinct positions changes;
        #: versions stale per-listener worst-case-delay memos.
        self._position_version = 0
        # listener -> (position_version, worst propagation delay)
        self._max_delay_cache: dict[Position, tuple[int, float]] = {}
        # (listener, source) -> (distance, delay_s, loss_db)
        self._geometry: dict[tuple[Position, Position], tuple[float, float, float]] = {}
        # id(bed signal), positions -> (gain, delay_s); beds are few.
        self._bed_geometry: dict[tuple[Position, Position], tuple[float, float]] = {}
        # (listener, start, end) -> rendered mix (read-only ndarray).
        self._window_cache: OrderedDict[
            tuple[Position, float, float], np.ndarray
        ] = OrderedDict()
        #: Optional fault model (repro.faults): consulted per emission
        #: and per rendered tone.  ``None`` keeps both render paths on
        #: their original arithmetic, bit for bit.
        self._fault_model = None
        # Registry-backed, API-compatible memo stats (repro.obs).
        self._m_memo_hits = obs.counter("channel.memo_hits")
        self._m_memo_misses = obs.counter("channel.memo_misses")
        self._m_pruned = obs.counter("channel.tones_pruned")
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_render_ms = self._obs.register(
                obs.Histogram("channel.render_ms")
            )
            self._m_scanned = self._obs.register(
                obs.Counter("channel.tones_scanned")
            )
            self._m_bisected = self._obs.register(
                obs.Counter("channel.tones_bisected_past")
            )
            self._obs.gauge_fn("channel.scheduled_tones",
                               lambda: len(self._tones))

    @property
    def render_cache_hits(self) -> int:
        """Window-memo hits served by :meth:`render_at`."""
        return self._m_memo_hits.value

    @property
    def render_cache_misses(self) -> int:
        """Window renders that had to be synthesized cold."""
        return self._m_memo_misses.value

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def set_fault_model(self, model) -> None:
        """Install (or clear, with ``None``) a fault model.

        The model sees every emission via ``transform_emission(start,
        spec, position)`` (clock skew) and every rendered tone via
        ``tone_level_adjust_db(tone)`` — ``None`` mutes the tone
        (speaker dropout), a float shifts its level (degradation).
        Both render paths consult it identically, so the fast/reference
        equivalence holds under any fault state.  Installing, clearing,
        and every fault state change must invalidate the window memo.
        """
        self._fault_model = model
        self.invalidate_render_cache()

    def play_tone(
        self, start_time: float, spec: ToneSpec, position: Position = Position()
    ) -> ScheduledTone:
        """Schedule a tone emission; returns the schedule record."""
        if self._fault_model is not None:
            start_time, spec, position = self._fault_model.transform_emission(
                start_time, spec, position
            )
        if start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {start_time}")
        if spec.frequency >= self.sample_rate / 2:
            raise ValueError(
                f"tone frequency {spec.frequency} exceeds channel Nyquist "
                f"limit ({self.sample_rate / 2} Hz)"
            )
        tone = ScheduledTone(start_time, spec, position)
        self._tones.append(tone)
        self._index_insert(tone)
        count = self._positions.get(position, 0)
        self._positions[position] = count + 1
        if count == 0:
            self._position_version += 1
        self.invalidate_render_cache()
        return tone

    def add_noise(
        self,
        signal: AudioSignal,
        position: Position = Position(),
        loop: bool = True,
        start: float = 0.0,
    ) -> NoiseBed:
        """Attach a pre-rendered noise bed to the channel.

        ``start`` anchors the bed's first sample at that emission time;
        pass a negative value to pre-roll a source so its sound has
        already crossed the room when captures begin at t = 0.
        """
        if signal.sample_rate != self.sample_rate:
            raise ValueError(
                f"noise sample rate {signal.sample_rate} != channel "
                f"rate {self.sample_rate}"
            )
        if len(signal) == 0:
            raise ValueError("noise bed must not be empty")
        bed = NoiseBed(signal, position, loop, start)
        self._noise_beds.append(bed)
        self.invalidate_render_cache()
        return bed

    @property
    def scheduled_tones(self) -> tuple[ScheduledTone, ...]:
        return tuple(self._tones)

    def clear(self) -> None:
        """Drop all scheduled tones and noise beds."""
        self._tones.clear()
        self._noise_beds.clear()
        self._index_ends.clear()
        self._index_starts.clear()
        self._index_entries.clear()
        self._index_starts_array = None
        self._positions.clear()
        self._position_version += 1
        self.invalidate_render_cache()

    @property
    def echo_tail(self) -> float:
        """How long past its end a tone can remain audible: the longest
        echo tap plus a room-scale propagation-delay allowance."""
        tail = self._max_echo_delay
        if self.enable_propagation_delay:
            tail += PRUNE_PROPAGATION_ALLOWANCE
        return tail

    def prune(self, before: float, margin: float = 1.0) -> int:
        """Forget tones that ended more than ``margin`` seconds before
        ``before``.

        Rendering sums over every scheduled tone, so a long-running
        deployment (liveness heartbeats for hours) would otherwise
        degrade linearly with history.  The keep-cutoff is extended by
        :attr:`echo_tail` — echo taps (and in-flight propagation at
        room scale) keep a tone audible past its scheduled end, and a
        pruned tone's echo must not vanish mid-capture.  Pruned audio
        can no longer be re-rendered; listeners that look back further
        than ``margin`` must prune accordingly.  Returns the number of
        tones dropped.
        """
        keep_cutoff = before - margin - self.echo_tail
        kept = [tone for tone in self._tones if tone.end_time >= keep_cutoff]
        dropped = len(self._tones) - len(kept)
        if dropped:
            self._tones = kept
            # The index is sorted by end time, so the drop is a prefix.
            split = bisect_left(self._index_ends, keep_cutoff)
            for _seq, tone in self._index_entries[:split]:
                count = self._positions[tone.position] - 1
                if count:
                    self._positions[tone.position] = count
                else:
                    del self._positions[tone.position]
                    self._position_version += 1
            del self._index_ends[:split]
            del self._index_starts[:split]
            del self._index_entries[:split]
            self._index_starts_array = None
            self._m_pruned.inc(dropped)
        self.invalidate_render_cache()
        return dropped

    def invalidate_render_cache(self) -> None:
        """Drop memoized window renders (geometry and envelope caches
        are pure and stay).  Scheduling operations call this
        automatically; benchmarks use it to time cold renders."""
        self._window_cache.clear()

    def _index_insert(self, tone: ScheduledTone) -> None:
        """Add one tone to the end-time-sorted interval index."""
        at = bisect_right(self._index_ends, tone.end_time)
        self._index_ends.insert(at, tone.end_time)
        self._index_starts.insert(at, tone.start_time)
        self._index_entries.insert(at, (self._sequence, tone))
        self._index_starts_array = None
        self._sequence += 1

    def _max_propagation_delay(self, listener: Position) -> float:
        """Worst-case flight time from any scheduled emitter position
        to ``listener`` (memoized per position-set version)."""
        if not (self.enable_propagation_delay and self._positions):
            return 0.0
        cached = self._max_delay_cache.get(listener)
        if cached is not None and cached[0] == self._position_version:
            return cached[1]
        worst = max(
            self._geometry_for(listener, position)[1]
            for position in self._positions
        )
        if len(self._max_delay_cache) >= GEOMETRY_CACHE_SIZE:
            self._max_delay_cache.clear()
        self._max_delay_cache[listener] = (self._position_version, worst)
        return worst

    # ------------------------------------------------------------------
    # Geometry caches
    # ------------------------------------------------------------------

    def _geometry_for(
        self, listener: Position, source: Position
    ) -> tuple[float, float, float]:
        """Cached ``(distance, propagation delay, spreading loss)``."""
        key = (listener, source)
        geometry = self._geometry.get(key)
        if geometry is None:
            distance = listener.distance_to(source)
            delay = (
                distance / SPEED_OF_SOUND
                if self.enable_propagation_delay
                else 0.0
            )
            geometry = (distance, delay, propagation_loss_db(distance))
            if len(self._geometry) >= GEOMETRY_CACHE_SIZE:
                self._geometry.clear()
            self._geometry[key] = geometry
        return geometry

    def _bed_geometry_for(
        self, listener: Position, bed: NoiseBed
    ) -> tuple[float, float]:
        """Cached ``(linear gain, propagation delay)`` for a noise bed.

        Looping beds are diffuse, phase-free ambience, so they keep the
        delay-free approximation; non-looping beds are positioned
        one-shot sources (e.g. a fan that fails and *stays* silent) and
        get speed-of-sound delay like tones do.
        """
        key = (listener, bed.position)
        geometry = self._bed_geometry.get(key)
        if geometry is None:
            distance = listener.distance_to(bed.position)
            gain = 10.0 ** (-propagation_loss_db(distance) / 20.0)
            delay = (
                distance / SPEED_OF_SOUND
                if self.enable_propagation_delay
                else 0.0
            )
            if len(self._bed_geometry) >= GEOMETRY_CACHE_SIZE:
                self._bed_geometry.clear()
            geometry = (gain, delay)
            self._bed_geometry[key] = geometry
        return geometry

    # ------------------------------------------------------------------
    # Rendering — vectorized fast path
    # ------------------------------------------------------------------

    def render_at(self, listener: Position, start: float, end: float) -> AudioSignal:
        """Pressure signal arriving at ``listener`` during ``[start, end)``.

        Equivalent to :meth:`render_at_reference` (the scalar per-tone
        loop) but served through the interval index, batched synthesis
        and the window memo.  Repeated renders of the same
        ``(listener, start, end)`` return the same (read-only) buffer.
        """
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        key = (listener, start, end)
        cached = self._window_cache.get(key)
        if cached is not None:
            self._window_cache.move_to_end(key)
            self._m_memo_hits.inc()
            return AudioSignal(cached, self.sample_rate)
        self._m_memo_misses.inc()
        observed = self._obs is not None
        wall_start = _time.perf_counter() if observed else 0.0
        count = int(round((end - start) * self.sample_rate))
        mix = np.zeros(count)
        if count:
            self._render_tones_batched(mix, listener, start)
            for bed in self._noise_beds:
                gain, delay = self._bed_geometry_for(listener, bed)
                self._mix_noise(mix, bed, start, gain, delay)
        if observed:
            self._m_render_ms.observe((_time.perf_counter() - wall_start) * 1e3)
        mix.setflags(write=False)
        self._window_cache[key] = mix
        if len(self._window_cache) > WINDOW_CACHE_SIZE:
            self._window_cache.popitem(last=False)
        return AudioSignal(mix, self.sample_rate)

    def _render_tones_batched(
        self, mix: np.ndarray, listener: Position, window_start: float
    ) -> None:
        """Mix every audible tone (and echo) into ``mix``, synthesizing
        same-length segments together with one broadcasted ``np.sin``.

        Matches :meth:`_mix_tone` bit-for-bit: the per-element phase /
        amplitude / envelope arithmetic is evaluated in the same order,
        and segments are accumulated in schedule order.
        """
        if not self._index_entries:
            return
        count = len(mix)
        window_end = window_start + count / self.sample_rate
        # Candidate horizon: a tone whose *emission* ended more than the
        # worst-case (propagation + echo) delay before the window opens
        # cannot reach it; everything older bisects away.  Arrival-side
        # rejection (start_time >= window_end, delays only push arrivals
        # later) masks scheduled-but-future tones in one vectorized
        # comparison.
        max_delay = self._max_echo_delay + self._max_propagation_delay(listener)
        first = bisect_left(self._index_ends, window_start - max_delay)
        observed = self._obs is not None
        if observed:
            self._m_bisected.inc(first)
        if first >= len(self._index_entries):
            return
        starts = self._index_starts_array
        if starts is None:
            starts = self._index_starts_array = np.asarray(self._index_starts)
        candidates = np.nonzero(starts[first:] < window_end)[0]
        if observed:
            self._m_scanned.inc(len(candidates))
        if len(candidates) == 0:
            return

        taps = ((0.0, 0.0),) + self.echo_taps
        entries = self._index_entries
        fault = self._fault_model
        # One entry per audible (tone, tap) segment:
        # (sequence, tap_index, lo, offset, length, coeff, amplitude, envelope)
        segments: list[
            tuple[int, int, int, int, int, float, float, np.ndarray]
        ] = []
        for candidate in candidates:
            sequence, tone = entries[first + candidate]
            if fault is not None:
                fault_adjust = fault.tone_level_adjust_db(tone)
                if fault_adjust is None:
                    continue
            else:
                fault_adjust = 0.0
            _distance, delay, loss_db = self._geometry_for(
                listener, tone.position
            )
            spec = tone.spec
            tone_len = int(round(spec.duration * self.sample_rate))
            envelope = None
            for tap_index, (extra_delay, extra_loss) in enumerate(taps):
                arrival = tone.start_time + (delay + extra_delay)
                departure = arrival + spec.duration
                if departure <= window_start or arrival >= window_end:
                    continue
                overlap_start = max(arrival, window_start)
                overlap_end = min(departure, window_end)
                lo = int(round((overlap_start - window_start) * self.sample_rate))
                hi = int(round((overlap_end - window_start) * self.sample_rate))
                hi = min(hi, count)
                if hi <= lo:
                    continue
                offset = int(round((overlap_start - arrival) * self.sample_rate))
                length = min(offset + (hi - lo), tone_len) - offset
                if length <= 0:
                    continue
                if envelope is None:
                    envelope = raised_cosine_envelope(
                        tone_len, self.sample_rate, signalling_ramp(spec.duration)
                    )
                level = spec.level_db - loss_db - extra_loss
                if fault_adjust:
                    level += fault_adjust
                amplitude = db_to_amplitude(level) * math.sqrt(2.0)
                coeff = 2.0 * math.pi * spec.frequency
                segments.append(
                    (sequence, tap_index, lo, offset, length,
                     coeff, amplitude, envelope)
                )
        if not segments:
            return

        # Batch synthesis: group segments by length, one sin per group.
        by_length: dict[int, list[int]] = {}
        for index, segment in enumerate(segments):
            by_length.setdefault(segment[4], []).append(index)
        rows: list[np.ndarray | None] = [None] * len(segments)
        for length, indices in by_length.items():
            offsets = np.array([segments[i][3] for i in indices], dtype=np.int64)
            coeffs = np.array([segments[i][5] for i in indices])
            amplitudes = np.array([segments[i][6] for i in indices])
            steps = offsets[:, None] + _sample_ramp(length)[None, :]
            block = np.sin(coeffs[:, None] * steps / self.sample_rate)
            block *= amplitudes[:, None]
            envelopes = np.stack([
                segments[i][7][segments[i][3] : segments[i][3] + length]
                for i in indices
            ])
            block *= envelopes
            for row, i in enumerate(indices):
                rows[i] = block[row]

        # Accumulate in schedule order (tone insertion, then tap order)
        # so the fast path sums bit-identically to the reference loop.
        for index in sorted(
            range(len(segments)), key=lambda i: segments[i][:2]
        ):
            _seq, _tap, lo, _offset, length, *_rest = segments[index]
            mix[lo : lo + length] += rows[index]

    # ------------------------------------------------------------------
    # Rendering — scalar reference path
    # ------------------------------------------------------------------

    def render_at_reference(
        self, listener: Position, start: float, end: float
    ) -> AudioSignal:
        """The original per-tone scalar render loop.

        Kept as the readable specification the vectorized
        :meth:`render_at` is pinned against (1e-9 equivalence suite).
        Bypasses the interval index and every cache except the shared
        envelope memo.
        """
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        count = int(round((end - start) * self.sample_rate))
        mix = np.zeros(count)
        if count == 0:
            return AudioSignal(mix, self.sample_rate)
        for tone in self._tones:
            self._mix_tone(mix, tone, listener, start)
            for extra_delay, extra_loss in self.echo_taps:
                self._mix_tone(mix, tone, listener, start,
                               extra_delay, extra_loss)
        for bed in self._noise_beds:
            distance = listener.distance_to(bed.position)
            gain = 10.0 ** (-propagation_loss_db(distance) / 20.0)
            delay = (
                distance / SPEED_OF_SOUND
                if self.enable_propagation_delay
                else 0.0
            )
            self._mix_noise(mix, bed, start, gain, delay)
        return AudioSignal(mix, self.sample_rate)

    def _mix_tone(
        self,
        mix: np.ndarray,
        tone: ScheduledTone,
        listener: Position,
        window_start: float,
        extra_delay: float = 0.0,
        extra_loss_db: float = 0.0,
    ) -> None:
        """Add one (possibly partial) tone (or one of its echoes) into
        a capture buffer."""
        if self._fault_model is not None:
            fault_adjust = self._fault_model.tone_level_adjust_db(tone)
            if fault_adjust is None:
                return
        else:
            fault_adjust = 0.0
        distance = listener.distance_to(tone.position)
        delay = distance / SPEED_OF_SOUND if self.enable_propagation_delay else 0.0
        arrival = tone.start_time + (delay + extra_delay)
        departure = arrival + tone.spec.duration

        window_end = window_start + len(mix) / self.sample_rate
        if departure <= window_start or arrival >= window_end:
            return

        level = tone.spec.level_db - propagation_loss_db(distance) - extra_loss_db
        if fault_adjust:
            level += fault_adjust
        # Synthesize only the overlapping span, phase-continuous with
        # the tone's own clock so windows seam together exactly.
        overlap_start = max(arrival, window_start)
        overlap_end = min(departure, window_end)
        lo = int(round((overlap_start - window_start) * self.sample_rate))
        hi = int(round((overlap_end - window_start) * self.sample_rate))
        hi = min(hi, len(mix))
        if hi <= lo:
            return

        tone_len = int(round(tone.spec.duration * self.sample_rate))
        offset = int(round((overlap_start - arrival) * self.sample_rate))
        n = np.arange(offset, min(offset + (hi - lo), tone_len))
        if len(n) == 0:
            return
        amplitude = db_to_amplitude(level) * math.sqrt(2.0)
        phase = 2.0 * math.pi * tone.spec.frequency * n / self.sample_rate
        samples = amplitude * np.sin(phase)
        envelope = raised_cosine_envelope(
            tone_len, self.sample_rate, signalling_ramp(tone.spec.duration)
        )
        samples *= envelope[n]
        mix[lo : lo + len(samples)] += samples

    def _mix_noise(
        self,
        mix: np.ndarray,
        bed: NoiseBed,
        window_start: float,
        gain: float,
        delay: float,
    ) -> None:
        """Add a noise bed into a capture buffer.

        Non-looping beds are positioned one-shot sources and honour the
        speed-of-sound ``delay`` like tones do.  Looping beds model
        diffuse, steady-state ambience whose absolute phase is
        meaningless, so they keep the historical delay-free
        approximation (their ``delay`` is ignored) — see DESIGN.md §5.
        """
        source = bed.signal.samples
        source_len = len(source)
        count = len(mix)
        if bed.loop:
            start_index = int(round((window_start - bed.start) * self.sample_rate))
            indices = (start_index + _sample_ramp(count)) % source_len
            mix += gain * source[indices]
        else:
            start_index = int(
                round((window_start - delay - bed.start) * self.sample_rate)
            )
            lo = max(start_index, 0)
            hi = min(start_index + count, source_len)
            if hi > lo:
                dest = lo - start_index
                mix[dest : dest + (hi - lo)] += gain * source[lo:hi]
