"""The air between speakers and microphones.

The paper's out-of-band channel is literal air: speakers bolted to
switches and servers, microphones near the MDN controller.  This module
models that medium deterministically so experiments are reproducible:

* **Emitters** are positioned in a room.  Tones are *scheduled* on the
  channel (start time + :class:`~repro.audio.synth.ToneSpec`), so the
  network simulator can chirp at simulated times and the microphone
  hears a causally consistent mixture.
* **Propagation** applies spherical spreading (−20·log10(d) dB relative
  to 1 m) and speed-of-sound delay.
* **Noise sources** are pre-rendered positioned signals (ambience,
  songs, fan wash) mixed into every capture.

Rendering is pull-based: nothing is synthesized until a microphone asks
for a window, and any window can be re-rendered bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .signal import DEFAULT_SAMPLE_RATE, AudioSignal, db_to_amplitude
from .synth import ToneSpec, raised_cosine_envelope, signalling_ramp

#: Speed of sound in air at ~20 °C, m/s.
SPEED_OF_SOUND = 343.0

#: Closest distance used for attenuation math; prevents the inverse
#: law from diverging when devices are modelled as co-located.
MIN_DISTANCE = 0.1


@dataclass(frozen=True)
class Position:
    """A point in the room, metres."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        return math.dist((self.x, self.y, self.z), (other.x, other.y, other.z))


def propagation_loss_db(distance: float) -> float:
    """Spherical-spreading loss relative to 1 m, in dB (>= 0)."""
    return max(0.0, 20.0 * math.log10(max(distance, MIN_DISTANCE)))


@dataclass(frozen=True)
class ScheduledTone:
    """A tone emission scheduled on the channel timeline."""

    start_time: float
    spec: ToneSpec
    position: Position

    @property
    def end_time(self) -> float:
        return self.start_time + self.spec.duration


@dataclass(frozen=True)
class NoiseBed:
    """A pre-rendered positioned noise signal anchored at t = 0.

    The signal loops if a capture window extends past its end, so a
    short rendered ambience can cover an arbitrarily long experiment.
    """

    signal: AudioSignal
    position: Position
    loop: bool = True


class AcousticChannel:
    """The shared air: schedules emissions, renders microphone captures.

    Parameters
    ----------
    sample_rate:
        Sample rate used for all rendering.
    enable_propagation_delay:
        Model speed-of-sound delay (a few ms at room scale).  On by
        default; tests that want exact timing can disable it.
    echo_taps:
        Early-reflection model: each ``(extra_delay_s, extra_loss_db)``
        tap adds a delayed, attenuated copy of every tone (walls,
        racks, raised floors).  Real rooms smear tones in time; the
        detector must tolerate it.  Applies to point-source tones only
        — noise beds are already diffuse.
    """

    def __init__(
        self,
        sample_rate: int = DEFAULT_SAMPLE_RATE,
        enable_propagation_delay: bool = True,
        echo_taps: tuple[tuple[float, float], ...] = (),
    ) -> None:
        for delay, loss_db in echo_taps:
            if delay <= 0:
                raise ValueError(f"echo delay must be positive, got {delay}")
            if loss_db < 0:
                raise ValueError(f"echo loss must be >= 0 dB, got {loss_db}")
        self.sample_rate = sample_rate
        self.enable_propagation_delay = enable_propagation_delay
        self.echo_taps = tuple(echo_taps)
        self._tones: list[ScheduledTone] = []
        self._noise_beds: list[NoiseBed] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def play_tone(
        self, start_time: float, spec: ToneSpec, position: Position = Position()
    ) -> ScheduledTone:
        """Schedule a tone emission; returns the schedule record."""
        if start_time < 0:
            raise ValueError(f"start_time must be non-negative, got {start_time}")
        if spec.frequency >= self.sample_rate / 2:
            raise ValueError(
                f"tone frequency {spec.frequency} exceeds channel Nyquist "
                f"limit ({self.sample_rate / 2} Hz)"
            )
        tone = ScheduledTone(start_time, spec, position)
        self._tones.append(tone)
        return tone

    def add_noise(
        self,
        signal: AudioSignal,
        position: Position = Position(),
        loop: bool = True,
    ) -> NoiseBed:
        """Attach a pre-rendered noise bed to the channel."""
        if signal.sample_rate != self.sample_rate:
            raise ValueError(
                f"noise sample rate {signal.sample_rate} != channel "
                f"rate {self.sample_rate}"
            )
        if len(signal) == 0:
            raise ValueError("noise bed must not be empty")
        bed = NoiseBed(signal, position, loop)
        self._noise_beds.append(bed)
        return bed

    @property
    def scheduled_tones(self) -> tuple[ScheduledTone, ...]:
        return tuple(self._tones)

    def clear(self) -> None:
        """Drop all scheduled tones and noise beds."""
        self._tones.clear()
        self._noise_beds.clear()

    def prune(self, before: float, margin: float = 1.0) -> int:
        """Forget tones that ended more than ``margin`` seconds before
        ``before``.

        Rendering sums over every scheduled tone, so a long-running
        deployment (liveness heartbeats for hours) would otherwise
        degrade linearly with history.  Pruned audio can no longer be
        re-rendered; listeners that look back further than ``margin``
        must prune accordingly.  Returns the number of tones dropped.
        """
        cutoff = before - margin
        kept = [tone for tone in self._tones if tone.end_time >= cutoff]
        dropped = len(self._tones) - len(kept)
        self._tones = kept
        return dropped

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_at(self, listener: Position, start: float, end: float) -> AudioSignal:
        """Pressure signal arriving at ``listener`` during ``[start, end)``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        count = int(round((end - start) * self.sample_rate))
        mix = np.zeros(count)
        if count == 0:
            return AudioSignal(mix, self.sample_rate)
        for tone in self._tones:
            self._mix_tone(mix, tone, listener, start)
            for extra_delay, extra_loss in self.echo_taps:
                self._mix_tone(mix, tone, listener, start,
                               extra_delay, extra_loss)
        for bed in self._noise_beds:
            self._mix_noise(mix, bed, listener, start)
        return AudioSignal(mix, self.sample_rate)

    def _mix_tone(
        self,
        mix: np.ndarray,
        tone: ScheduledTone,
        listener: Position,
        window_start: float,
        extra_delay: float = 0.0,
        extra_loss_db: float = 0.0,
    ) -> None:
        """Add one (possibly partial) tone (or one of its echoes) into
        a capture buffer."""
        distance = listener.distance_to(tone.position)
        delay = distance / SPEED_OF_SOUND if self.enable_propagation_delay else 0.0
        delay += extra_delay
        arrival = tone.start_time + delay
        departure = arrival + tone.spec.duration

        window_end = window_start + len(mix) / self.sample_rate
        if departure <= window_start or arrival >= window_end:
            return

        level = tone.spec.level_db - propagation_loss_db(distance) - extra_loss_db
        # Synthesize only the overlapping span, phase-continuous with
        # the tone's own clock so windows seam together exactly.
        overlap_start = max(arrival, window_start)
        overlap_end = min(departure, window_end)
        lo = int(round((overlap_start - window_start) * self.sample_rate))
        hi = int(round((overlap_end - window_start) * self.sample_rate))
        hi = min(hi, len(mix))
        if hi <= lo:
            return

        tone_len = int(round(tone.spec.duration * self.sample_rate))
        offset = int(round((overlap_start - arrival) * self.sample_rate))
        n = np.arange(offset, min(offset + (hi - lo), tone_len))
        if len(n) == 0:
            return
        amplitude = db_to_amplitude(level) * math.sqrt(2.0)
        phase = 2.0 * math.pi * tone.spec.frequency * n / self.sample_rate
        samples = amplitude * np.sin(phase)
        envelope = raised_cosine_envelope(
            tone_len, self.sample_rate, signalling_ramp(tone.spec.duration)
        )
        samples *= envelope[n]
        mix[lo : lo + len(samples)] += samples

    def _mix_noise(
        self,
        mix: np.ndarray,
        bed: NoiseBed,
        listener: Position,
        window_start: float,
    ) -> None:
        """Add a (looping) noise bed into a capture buffer."""
        distance = listener.distance_to(bed.position)
        gain = 10.0 ** (-propagation_loss_db(distance) / 20.0)
        source = bed.signal.samples
        source_len = len(source)
        start_index = int(round(window_start * self.sample_rate))
        count = len(mix)
        if bed.loop:
            indices = (start_index + np.arange(count)) % source_len
            mix += gain * source[indices]
        else:
            lo = start_index
            hi = min(start_index + count, source_len)
            if hi > lo >= 0:
                mix[: hi - lo] += gain * source[lo:hi]
