"""Goertzel single-frequency detection — the cheap detector backend.

When the listening application already knows exactly which frequencies
to expect (which is the common case in Music-Defined Networking: the
controller "knows what frequencies are associated with each port for a
switch, so we know which frequencies to listen for", §4), a full FFT is
wasteful.  The Goertzel algorithm evaluates a single DFT bin in O(N)
with one multiply per sample, so a bank of K watched frequencies costs
O(K·N) instead of O(N log N) — cheaper for small K.

The XCAP ablation benchmark compares this backend against the FFT
backend for both accuracy and speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .signal import AudioSignal, amplitude_to_db


def goertzel_magnitude(signal: AudioSignal, frequency: float) -> float:
    """RMS-calibrated magnitude of one frequency in a window.

    Matches the calibration of :class:`~repro.audio.fft.SpectrumAnalyzer`:
    a pure sinusoid of RMS level ``r`` at ``frequency`` reports ``r``.
    Uses a Hann window for sidelobe suppression, like the FFT backend.
    """
    count = len(signal)
    if count == 0:
        return 0.0
    if frequency < 0 or frequency > signal.sample_rate / 2:
        raise ValueError(
            f"frequency {frequency} outside [0, Nyquist] for "
            f"sample rate {signal.sample_rate}"
        )
    taper = np.hanning(count)
    samples = signal.samples * taper
    gain = float(np.sum(taper)) / count

    # Evaluate the single DFT bin nearest the target frequency.  The
    # classic Goertzel recurrence is a scalar loop; the equivalent dot
    # product form below computes the identical bin and vectorizes.
    k = int(round(frequency * count / signal.sample_rate))
    omega = 2.0 * math.pi * k / count
    n = np.arange(count)
    real = float(np.dot(samples, np.cos(omega * n)))
    imag = float(np.dot(samples, np.sin(omega * n)))
    magnitude = math.hypot(real, imag)
    return magnitude * math.sqrt(2.0) / (count * gain)


@dataclass(frozen=True)
class GoertzelResult:
    """Detection result for one watched frequency."""

    frequency: float
    magnitude: float

    @property
    def level_db(self) -> float:
        return amplitude_to_db(self.magnitude)


class GoertzelBank:
    """A bank of Goertzel detectors for a fixed set of watched frequencies.

    Parameters
    ----------
    frequencies:
        The tone frequencies the listening application cares about.
    """

    def __init__(self, frequencies: list[float]) -> None:
        if not frequencies:
            raise ValueError("GoertzelBank requires at least one frequency")
        self.frequencies = sorted(float(f) for f in frequencies)

    def analyze(self, signal: AudioSignal) -> list[GoertzelResult]:
        """Magnitude of every watched frequency in one window."""
        return [
            GoertzelResult(freq, goertzel_magnitude(signal, freq))
            for freq in self.frequencies
        ]

    def detect(
        self, signal: AudioSignal, threshold_db: float = 10.0
    ) -> list[GoertzelResult]:
        """Watched frequencies present ``threshold_db`` above the local floor.

        The floor is estimated from probe frequencies placed between
        the watched ones, mirroring the FFT backend's median floor.
        """
        results = self.analyze(signal)
        floor = self._estimate_floor(signal)
        threshold = max(floor, 1e-12) * 10.0 ** (threshold_db / 20.0)
        return [r for r in results if r.magnitude >= threshold]

    def _estimate_floor(self, signal: AudioSignal) -> float:
        """Median magnitude at off-tone probe frequencies."""
        probes = []
        freqs = self.frequencies
        nyquist = signal.sample_rate / 2
        for index in range(len(freqs)):
            if index + 1 < len(freqs):
                probes.append(0.5 * (freqs[index] + freqs[index + 1]))
        probes.append(min(freqs[0] * 0.5 + 10.0, nyquist - 1.0))
        probes.append(min(freqs[-1] * 1.3, nyquist - 1.0))
        magnitudes = [goertzel_magnitude(signal, p) for p in probes if 0 < p < nyquist]
        if not magnitudes:
            return 0.0
        return float(np.median(magnitudes))
