"""Goertzel single-frequency detection — the cheap detector backend.

When the listening application already knows exactly which frequencies
to expect (which is the common case in Music-Defined Networking: the
controller "knows what frequencies are associated with each port for a
switch, so we know which frequencies to listen for", §4), a full FFT is
wasteful.  The Goertzel algorithm evaluates a single DFT bin in O(N)
with one multiply per sample, so a bank of K watched frequencies costs
O(K·N) instead of O(N log N) — cheaper for small K.

:func:`goertzel_magnitude` is the scalar reference implementation; the
:class:`GoertzelBank` evaluates every watched frequency (and its noise
floor probes) with a single matmul against a per-window-length phasor
matrix, cached across the identically sized capture windows of the
listening loop.  The XCAP ablation benchmark compares this backend
against the FFT backend for both accuracy and speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import obs
from .fft import hann_taper
from .signal import AudioSignal, amplitude_to_db

#: Minimum distance, in Hz, between a noise-floor probe and any watched
#: frequency.  A probe that lands on (or within the main lobe of) a
#: watched tone measures the tone, not the floor, inflating the noise
#: estimate and suppressing valid detections.  20 Hz — the paper's
#: empirical separability limit — keeps every probe at least one guard
#: spacing clear of the watch list.
FLOOR_PROBE_CLEARANCE_HZ = 20.0


def goertzel_magnitude(signal: AudioSignal, frequency: float) -> float:
    """RMS-calibrated magnitude of one frequency in a window.

    Matches the calibration of :class:`~repro.audio.fft.SpectrumAnalyzer`:
    a pure sinusoid of RMS level ``r`` at ``frequency`` reports ``r``.
    Uses a Hann window for sidelobe suppression, like the FFT backend.
    This is the scalar reference the vectorized :class:`GoertzelBank`
    must match within 1e-9.
    """
    count = len(signal)
    if count == 0:
        return 0.0
    if frequency < 0 or frequency > signal.sample_rate / 2:
        raise ValueError(
            f"frequency {frequency} outside [0, Nyquist] for "
            f"sample rate {signal.sample_rate}"
        )
    taper, gain = hann_taper(count)
    samples = signal.samples * taper

    # Evaluate the single DFT bin nearest the target frequency.  The
    # classic Goertzel recurrence is a scalar loop; the equivalent dot
    # product form below computes the identical bin and vectorizes.
    k = int(round(frequency * count / signal.sample_rate))
    omega = 2.0 * math.pi * k / count
    n = np.arange(count)
    real = float(np.dot(samples, np.cos(omega * n)))
    imag = float(np.dot(samples, np.sin(omega * n)))
    magnitude = math.hypot(real, imag)
    # One-sided x-sqrt(2) RMS correction, except at DC and Nyquist
    # which have no mirrored bin (matches SpectrumAnalyzer's
    # one_sided_scale calibration).
    scale = 1.0 if k == 0 or 2 * k == count else math.sqrt(2.0)
    return magnitude * scale / (count * gain)


@dataclass(frozen=True)
class GoertzelResult:
    """Detection result for one watched frequency."""

    frequency: float
    magnitude: float

    @property
    def level_db(self) -> float:
        return amplitude_to_db(self.magnitude)


def _phasor_table(
    frequencies: np.ndarray, count: int, sample_rate: int
) -> tuple[np.ndarray, np.ndarray]:
    """Phasor matrix and calibration row for one window length.

    Returns ``(phasors, scales)`` where ``phasors`` has shape
    ``(K, N)`` with row *j* equal to ``exp(-i·2π·k_j·n/N)`` for the DFT
    bin ``k_j`` nearest frequency *j*, and ``scales`` holds the
    per-row one-sided RMS correction (1 at DC/Nyquist, sqrt(2)
    elsewhere).  ``|phasors @ windowed| * scales / (count * gain)``
    then reproduces :func:`goertzel_magnitude` for every row at once.
    """
    ks = np.rint(frequencies * count / sample_rate).astype(np.int64)
    omegas = 2.0 * np.pi * ks / count
    n = np.arange(count)
    phasors = np.exp(-1j * np.outer(omegas, n))
    scales = np.where((ks == 0) | (2 * ks == count), 1.0, math.sqrt(2.0))
    return phasors, scales


class GoertzelBank:
    """A bank of Goertzel detectors for a fixed set of watched frequencies.

    The bank precomputes, per window length, a ``(K, N)`` phasor matrix
    for the watched frequencies (and one for its noise-floor probes) so
    that analyzing a window is a single matmul instead of K independent
    cos/sin evaluations.  Capture windows in the listening loop all
    share one length, so the cache is hit on every window after the
    first.

    Parameters
    ----------
    frequencies:
        The tone frequencies the listening application cares about.
    """

    def __init__(self, frequencies: list[float]) -> None:
        if not frequencies:
            raise ValueError("GoertzelBank requires at least one frequency")
        self.frequencies = sorted(float(f) for f in frequencies)
        self._freq_array = np.array(self.frequencies)
        # (count, sample_rate) -> (phasors, scales) for the watch list.
        self._watch_tables: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        # (count, sample_rate) -> (phasors, scales) for the floor probes.
        self._probe_tables: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        # sample_rate -> probe frequency array.
        self._probe_freqs: dict[int, np.ndarray] = {}
        # Observability: per-window floor estimates (get-or-create, so
        # rebuilt banks keep feeding the same histogram).
        self._obs = obs.get_registry()
        if self._obs is not None:
            self._m_floor_db = self._obs.histogram("goertzel.floor_db")

    # ------------------------------------------------------------------
    # Phasor caches
    # ------------------------------------------------------------------

    def _watch_table(
        self, count: int, sample_rate: int
    ) -> tuple[np.ndarray, np.ndarray]:
        key = (count, sample_rate)
        table = self._watch_tables.get(key)
        if table is None:
            nyquist = sample_rate / 2
            for frequency in self.frequencies:
                if frequency < 0 or frequency > nyquist:
                    raise ValueError(
                        f"frequency {frequency} outside [0, Nyquist] for "
                        f"sample rate {sample_rate}"
                    )
            table = _phasor_table(self._freq_array, count, sample_rate)
            self._watch_tables[key] = table
        return table

    def _probe_table(
        self, count: int, sample_rate: int
    ) -> tuple[np.ndarray, np.ndarray]:
        key = (count, sample_rate)
        table = self._probe_tables.get(key)
        if table is None:
            probes = np.array(self.floor_probe_frequencies(sample_rate))
            table = _phasor_table(probes, count, sample_rate)
            self._probe_tables[key] = table
        return table

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def analyze(self, signal: AudioSignal) -> list[GoertzelResult]:
        """Magnitude of every watched frequency in one window."""
        count = len(signal)
        if count == 0:
            return [GoertzelResult(f, 0.0) for f in self.frequencies]
        magnitudes = self.analyze_block(
            signal.samples[np.newaxis, :], signal.sample_rate
        )[0]
        return [
            GoertzelResult(freq, float(mag))
            for freq, mag in zip(self.frequencies, magnitudes)
        ]

    def analyze_block(self, frames: np.ndarray, sample_rate: int) -> np.ndarray:
        """Watched-frequency magnitudes for a batch of equal-length frames.

        Parameters
        ----------
        frames:
            Sample matrix of shape ``(T, N)`` (e.g. from
            :meth:`AudioSignal.frame_matrix`).
        sample_rate:
            Sample rate of the frames, Hz.

        Returns
        -------
        numpy.ndarray
            Magnitudes of shape ``(T, K)``, row *t* matching
            :meth:`analyze` of frame *t* (and therefore
            :func:`goertzel_magnitude` per frequency) within 1e-9.
        """
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim != 2:
            raise ValueError(f"frames must be 2-D, got shape {frames.shape}")
        count = frames.shape[1]
        if count == 0:
            return np.zeros((frames.shape[0], len(self.frequencies)))
        phasors, scales = self._watch_table(count, sample_rate)
        return self._magnitudes(frames, count, phasors, scales)

    @staticmethod
    def _magnitudes(
        frames: np.ndarray, count: int, phasors: np.ndarray, scales: np.ndarray
    ) -> np.ndarray:
        taper, gain = hann_taper(count)
        windowed = frames * taper
        return np.abs(windowed @ phasors.T) * (scales / (count * gain))

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def detect(
        self, signal: AudioSignal, threshold_db: float = 10.0
    ) -> list[GoertzelResult]:
        """Watched frequencies present ``threshold_db`` above the local floor.

        The floor is estimated from probe frequencies placed between
        (and clear of) the watched ones, mirroring the FFT backend's
        median floor.
        """
        count = len(signal)
        if count == 0:
            return []
        frames = signal.samples[np.newaxis, :]
        magnitudes = self.analyze_block(frames, signal.sample_rate)[0]
        floor = self.floor_block(frames, signal.sample_rate)[0]
        if self._obs is not None and floor > 0:
            self._m_floor_db.observe(amplitude_to_db(float(floor)))
        threshold = max(floor, 1e-12) * 10.0 ** (threshold_db / 20.0)
        return [
            GoertzelResult(freq, float(mag))
            for freq, mag in zip(self.frequencies, magnitudes)
            if mag >= threshold
        ]

    def floor_block(self, frames: np.ndarray, sample_rate: int) -> np.ndarray:
        """Per-frame noise-floor estimates for a batch of frames.

        Median magnitude across the off-tone probe frequencies, shape
        ``(T,)``.  Frames where no valid probe exists report 0.0.
        """
        frames = np.asarray(frames, dtype=np.float64)
        count = frames.shape[1]
        if count == 0 or not self.floor_probe_frequencies(sample_rate):
            return np.zeros(frames.shape[0])
        phasors, scales = self._probe_table(count, sample_rate)
        magnitudes = self._magnitudes(frames, count, phasors, scales)
        return np.median(magnitudes, axis=1)

    def floor_probe_frequencies(self, sample_rate: int) -> list[float]:
        """Off-tone probe frequencies used for noise-floor estimation.

        Probes are midpoints between adjacent watched frequencies plus
        one probe below and one above the watch list.  Every probe is
        kept at least ``FLOOR_PROBE_CLEARANCE_HZ`` away from all
        watched frequencies — a probe closer than that (e.g. the low
        edge probe of a 20–40 Hz plan) measures a watched tone itself
        and inflates the floor, suppressing valid detections.  Edge
        probes that fail the clearance fall back to exactly one
        clearance outside the watch list.
        """
        cached = self._probe_freqs.get(sample_rate)
        if cached is not None:
            return list(cached)
        nyquist = sample_rate / 2
        freqs = self._freq_array

        def valid(probe: float) -> bool:
            return (
                0 < probe < nyquist
                and float(np.min(np.abs(freqs - probe)))
                >= FLOOR_PROBE_CLEARANCE_HZ
            )

        probes = []
        for low, high in zip(freqs[:-1], freqs[1:]):
            midpoint = 0.5 * (low + high)
            if valid(midpoint):
                probes.append(float(midpoint))
        for candidate, fallback in (
            (min(freqs[0] * 0.5 + 10.0, nyquist - 1.0),
             freqs[0] - FLOOR_PROBE_CLEARANCE_HZ),
            (min(freqs[-1] * 1.3, nyquist - 1.0),
             freqs[-1] + FLOOR_PROBE_CLEARANCE_HZ),
        ):
            if valid(candidate):
                probes.append(float(candidate))
            elif valid(fallback):
                probes.append(float(fallback))
        self._probe_freqs[sample_rate] = np.array(probes)
        return probes

    def _estimate_floor(self, signal: AudioSignal) -> float:
        """Median magnitude at off-tone probe frequencies."""
        if len(signal) == 0:
            return 0.0
        return float(
            self.floor_block(signal.samples[np.newaxis, :], signal.sample_rate)[0]
        )
