"""Acoustic-path fault injectors: speakers, air, and microphones.

Two injectors cover the sound side of the taxonomy:

* :class:`AcousticFaults` installs as a channel fault model
  (:meth:`~repro.audio.channel.AcousticChannel.set_fault_model`) and
  bends the *air*: speaker dropout (tones emitted during an outage
  never reach any listener), speaker degradation (an extra per-emitter
  loss in dB), per-emitter clock skew (tones leave late or early), and
  transient noise bursts (one-shot positioned white-noise beds).
* :class:`MicrophoneFaults` installs on one
  :class:`~repro.audio.devices.Microphone` and bends the *capture*:
  a failed capsule records silence (its electrical noise floor
  included), a saturated one hard-clips.

Fault windows are half-open intervals ``[start, end)`` on the shared
simulation clock.  Dropout and degradation use **emission-overlap**
semantics: a tone whose emission interval overlaps an outage is fully
muted (a driver cutting out mid-tone corrupts the whole gated
emission), which keeps the fast and reference render paths trivially
equivalent.  Every schedule call and every scheduled edge invalidates
the channel's memoized window cache, so a cached render can never leak
across a fault state change.
"""

from __future__ import annotations

import math

from ..audio.channel import AcousticChannel, Position, ScheduledTone
from ..audio.devices import Microphone
from ..audio.fft import bandpass_filter
from ..audio.noise import white_noise
from ..audio.signal import AudioSignal, db_to_amplitude
from ..audio.synth import ToneSpec
from ..net.sim import Simulator
from .harness import FaultCounter, seeded_rng


def _overlaps(window_start: float, window_end: float,
              start: float, end: float) -> bool:
    """Half-open interval overlap."""
    return window_start < end and window_end > start


class AcousticFaults:
    """Channel-side fault model: dropouts, degradation, skew, bursts.

    Installs itself via ``channel.set_fault_model(self)``; the channel
    consults it on every emission (clock skew) and every rendered tone
    (dropout / degradation), identically on the vectorized and the
    scalar reference path.
    """

    def __init__(self, sim: Simulator, channel: AcousticChannel,
                 seed: int = 0) -> None:
        self.sim = sim
        self.channel = channel
        self.seed = seed
        #: position -> [(start, end), ...] outage windows.
        self._dropouts: dict[Position, list[tuple[float, float]]] = {}
        #: position -> [(start, end, loss_db), ...] degradation windows.
        self._degradations: dict[Position, list[tuple[float, float, float]]] = {}
        #: position -> emission clock offset, seconds (late > 0).
        self._clock_skew: dict[Position, float] = {}
        self._m_dropouts = FaultCounter("speaker_dropouts")
        self._m_degradations = FaultCounter("speaker_degradations")
        self._m_muted = FaultCounter("tones_muted")
        self._m_attenuated = FaultCounter("tones_attenuated")
        self._m_skewed = FaultCounter("tones_skewed")
        self._m_bursts = FaultCounter("noise_bursts")
        self._m_interferers = FaultCounter("narrowband_interferers")
        self.counters = (
            self._m_dropouts, self._m_degradations, self._m_muted,
            self._m_attenuated, self._m_skewed, self._m_bursts,
            self._m_interferers,
        )
        channel.set_fault_model(self)

    # ------------------------------------------------------------------
    # Scheduling API (what experiments call)
    # ------------------------------------------------------------------

    def drop_speaker(self, position: Position, start: float,
                     end: float) -> None:
        """Mute every emission from ``position`` overlapping
        ``[start, end)``."""
        if end <= start:
            raise ValueError(f"dropout window [{start}, {end}) is empty")
        self._dropouts.setdefault(position, []).append((start, end))
        self._on_state_change()
        self._schedule_edges(start, end, self._m_dropouts)

    def degrade_speaker(self, position: Position, start: float, end: float,
                        loss_db: float) -> None:
        """Attenuate emissions from ``position`` overlapping
        ``[start, end)`` by ``loss_db`` (a failing driver, a blocked
        horn).  Overlapping degradations stack additively in dB."""
        if end <= start:
            raise ValueError(f"degradation window [{start}, {end}) is empty")
        if loss_db <= 0:
            raise ValueError(f"loss_db must be positive, got {loss_db}")
        self._degradations.setdefault(position, []).append(
            (start, end, loss_db)
        )
        self._on_state_change()
        self._schedule_edges(start, end, self._m_degradations)

    def set_clock_skew(self, position: Position, skew: float) -> None:
        """Offset every *future* emission from ``position`` by ``skew``
        seconds (a Pi whose clock runs late chirps late)."""
        self._clock_skew[position] = skew
        self._on_state_change()

    def noise_burst(self, start: float, duration: float, level_db: float,
                    position: Position = Position(),
                    label: str = "burst") -> None:
        """A transient positioned white-noise burst (a door slam, a
        fan spin-up) anchored at ``start``; seeded per label."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        rng = seeded_rng(self.seed, f"{label}@{start:.6f}")
        signal = white_noise(duration, level_db,
                             sample_rate=self.channel.sample_rate, rng=rng)
        self.channel.add_noise(signal, position, loop=False, start=start)
        self._m_bursts.inc()

    def narrowband_interferer(self, low_hz: float, high_hz: float,
                              start: float, end: float,
                              level_db: float = 85.0,
                              position: Position = Position(),
                              label: str = "interferer") -> None:
        """A persistent narrowband noise bed over ``[start, end)`` —
        the fan rumble / bass-line model the spectrum sentinel exists
        for.  Seeded white noise band-limited to ``[low_hz, high_hz]``
        is injected at ``position``; the spectral energy sits only in
        the targeted bands, so detection elsewhere in the plan is
        untouched while tones inside the band are masked."""
        if end <= start:
            raise ValueError(f"interferer window [{start}, {end}) is empty")
        if not 0 < low_hz < high_hz:
            raise ValueError(f"invalid band [{low_hz}, {high_hz}]")
        rng = seeded_rng(self.seed, f"{label}@{start:.6f}")
        # Band-limiting discards most of the white bed's power; boost
        # the source level so the surviving band sits at level_db.
        bandwidth = high_hz - low_hz
        nyquist = self.channel.sample_rate / 2.0
        makeup_db = 10.0 * math.log10(nyquist / bandwidth)
        signal = white_noise(end - start, level_db + makeup_db,
                             sample_rate=self.channel.sample_rate, rng=rng)
        signal = bandpass_filter(signal, low_hz, high_hz)
        self.channel.add_noise(signal, position, loop=False, start=start)
        self._m_interferers.inc()

    def random_dropouts(self, position: Position, start: float, end: float,
                        rate: float, mean_outage: float = 0.6,
                        label: str = "dropouts") -> list[tuple[float, float]]:
        """Generate an alternating up/down schedule over ``[start, end)``
        whose expected down-time fraction is ``rate``; returns the
        outage windows it scheduled.  Fully determined by
        ``(seed, label)``."""
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        windows: list[tuple[float, float]] = []
        if rate == 0.0:
            return windows
        rng = seeded_rng(self.seed, label)
        mean_up = mean_outage * (1.0 - rate) / rate
        at = start + float(rng.exponential(mean_up))
        while at < end:
            down = min(at + float(rng.exponential(mean_outage)), end)
            self.drop_speaker(position, at, down)
            windows.append((at, down))
            at = down + float(rng.exponential(mean_up))
        return windows

    # ------------------------------------------------------------------
    # Channel fault-model protocol
    # ------------------------------------------------------------------

    def transform_emission(
        self, start_time: float, spec: ToneSpec, position: Position
    ) -> tuple[float, ToneSpec, Position]:
        """Applied by :meth:`AcousticChannel.play_tone` on every
        scheduled emission — the clock-skew hook."""
        skew = self._clock_skew.get(position)
        if skew:
            self._m_skewed.inc()
            start_time = max(0.0, start_time + skew)
        return start_time, spec, position

    def tone_level_adjust_db(self, tone: ScheduledTone) -> float | None:
        """Consulted per rendered tone: ``None`` mutes it, a float is
        added to its emission level (degradation loss is negative)."""
        for start, end in self._dropouts.get(tone.position, ()):
            if _overlaps(tone.start_time, tone.end_time, start, end):
                self._m_muted.inc()
                return None
        adjust = 0.0
        for start, end, loss_db in self._degradations.get(tone.position, ()):
            if _overlaps(tone.start_time, tone.end_time, start, end):
                adjust -= loss_db
        if adjust:
            self._m_attenuated.inc()
        return adjust

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_state_change(self) -> None:
        self.channel.invalidate_render_cache()

    def _schedule_edges(self, start: float, end: float,
                        counter: FaultCounter) -> None:
        """Count the fault when it *activates* on the sim clock, and
        invalidate the render memo at both edges so cached windows can
        never straddle a state change."""

        def activate() -> None:
            counter.inc()
            self._on_state_change()

        if start <= self.sim.now:
            activate()
        else:
            self.sim.schedule_at(start, activate)
        if end > self.sim.now:
            self.sim.schedule_at(end, self._on_state_change)


class MicrophoneFaults:
    """Capture-side fault model for one microphone.

    A capture whose window overlaps a failure interval records silence
    (dead capsule / unplugged cable); one overlapping a clipping
    interval is hard-limited at the given level (saturated preamp).
    """

    def __init__(self, sim: Simulator, microphone: Microphone) -> None:
        self.sim = sim
        self.microphone = microphone
        self._failures: list[tuple[float, float]] = []
        self._clipping: list[tuple[float, float, float]] = []
        self._m_failures = FaultCounter("mic_failures")
        self._m_clip_windows = FaultCounter("mic_clipping_windows")
        self._m_zeroed = FaultCounter("captures_zeroed")
        self._m_clipped = FaultCounter("captures_clipped")
        self.counters = (
            self._m_failures, self._m_clip_windows,
            self._m_zeroed, self._m_clipped,
        )
        microphone.fault_model = self

    def fail(self, start: float, end: float) -> None:
        """Dead capsule over ``[start, end)``: captures record zeros."""
        if end <= start:
            raise ValueError(f"failure window [{start}, {end}) is empty")
        self._failures.append((start, end))
        self._count_at(start, self._m_failures)

    def clip(self, start: float, end: float, clip_level_db: float = 60.0) -> None:
        """Saturated input over ``[start, end)``: samples are limited
        to the amplitude of ``clip_level_db``."""
        if end <= start:
            raise ValueError(f"clipping window [{start}, {end}) is empty")
        self._clipping.append((start, end, clip_level_db))
        self._count_at(start, self._m_clip_windows)

    def _count_at(self, start: float, counter: FaultCounter) -> None:
        if start <= self.sim.now:
            counter.inc()
        else:
            self.sim.schedule_at(start, counter.inc)

    # ------------------------------------------------------------------
    # Microphone fault-model protocol
    # ------------------------------------------------------------------

    def transform_capture(
        self, signal: AudioSignal, start: float, end: float
    ) -> AudioSignal:
        """Applied by :meth:`Microphone.record` to every capture."""
        for fail_start, fail_end in self._failures:
            if _overlaps(start, end, fail_start, fail_end):
                self._m_zeroed.inc()
                return AudioSignal(signal.samples * 0.0, signal.sample_rate)
        clip_amplitude: float | None = None
        for clip_start, clip_end, level_db in self._clipping:
            if _overlaps(start, end, clip_start, clip_end):
                amplitude = db_to_amplitude(level_db)
                if clip_amplitude is None or amplitude < clip_amplitude:
                    clip_amplitude = amplitude
        if clip_amplitude is not None:
            clipped = signal.samples.clip(-clip_amplitude, clip_amplitude)
            self._m_clipped.inc()
            return AudioSignal(clipped, signal.sample_rate)
        return signal
