"""Network-side fault injectors: the MP wire and the Pi itself.

The paper's faithful MP path (``core/pi.py``) sends Music Protocol
bytes over a real simulated Ethernet link; that link can lose or
corrupt frames, and the Pi at its far end can crash and reboot.  These
injectors model exactly that:

* :class:`MpLinkFaults` installs on one
  :class:`~repro.net.link.LinkDirection` (typically
  ``switch.ports[bridge.pi_port]``, the switch→Pi direction) and
  applies independent Bernoulli loss and single-bit corruption to each
  delivered packet, from a ``(seed, label)`` stream.
* :class:`PiFaults` schedules :meth:`RaspberryPi.crash` /
  :meth:`RaspberryPi.restart` windows; a crashed Pi drops every MP
  frame (and therefore ACKs nothing).

Corruption flips a single payload bit — the hardest case for the MP
XOR checksum, which the protocol-hardening suite proves it always
catches.
"""

from __future__ import annotations

from ..net.link import LinkDirection
from ..net.packet import Packet
from ..net.sim import Simulator
from .harness import FaultCounter, seeded_rng


class MpLinkFaults:
    """Bernoulli frame loss + bit-flip corruption on one link direction."""

    def __init__(self, direction: LinkDirection, loss_rate: float = 0.0,
                 corrupt_rate: float = 0.0, seed: int = 0,
                 label: str = "mp_link") -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError(
                f"corrupt_rate must be in [0, 1], got {corrupt_rate}"
            )
        self.direction = direction
        self.loss_rate = loss_rate
        self.corrupt_rate = corrupt_rate
        self._rng = seeded_rng(seed, label)
        self._m_lost = FaultCounter("mp_frames_lost")
        self._m_corrupted = FaultCounter("mp_frames_corrupted")
        self.counters = (self._m_lost, self._m_corrupted)
        direction.fault_model = self

    def on_deliver(self, packet: Packet) -> Packet | None:
        """Applied by :meth:`LinkDirection._deliver` at arrival time.

        Returns ``None`` to drop the packet, or the (possibly
        corrupted) packet to deliver.  Draw order is fixed — loss
        first, then corruption — so a run is reproducible from the
        stream alone.
        """
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self._m_lost.inc()
            return None
        if (self.corrupt_rate and packet.payload
                and self._rng.random() < self.corrupt_rate):
            bit = int(self._rng.integers(len(packet.payload) * 8))
            flipped = bytearray(packet.payload)
            flipped[bit // 8] ^= 1 << (bit % 8)
            packet.payload = bytes(flipped)
            self._m_corrupted.inc()
        return packet


class PiFaults:
    """Crash/restart windows for a :class:`~repro.core.pi.RaspberryPi`."""

    def __init__(self, sim: Simulator, pi) -> None:
        self.sim = sim
        self.pi = pi
        self._m_crashes = FaultCounter("pi_crashes")
        self.counters = (self._m_crashes,)

    def crash(self, start: float, end: float | None = None) -> None:
        """Crash the Pi at ``start``; reboot at ``end`` (never, if
        ``None``).  A crashed Pi drops every MP frame silently."""
        if end is not None and end <= start:
            raise ValueError(f"crash window [{start}, {end}) is empty")

        def go_down() -> None:
            self.pi.crash()
            self._m_crashes.inc()

        if start <= self.sim.now:
            go_down()
        else:
            self.sim.schedule_at(start, go_down)
        if end is not None:
            self.sim.schedule_at(max(end, self.sim.now), self.pi.restart)
