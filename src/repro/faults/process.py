"""Process-level fault injection: crash, hang, poison, duplicate.

PR 4 taught the *acoustic* rig to survive dead speakers and lossy
links; this module does the same for the *execution substrate* of the
fleet — the worker processes that run shards.  A real pool misbehaves
in four canonical ways, and the chaos harness injects exactly those:

================  =====================================================
fault             what the worker does
================  =====================================================
crash             dies mid-shard — either by raising
                  :class:`SimulatedWorkerCrash` (the pool surfaces a
                  per-future exception) or, in ``hard`` mode, by
                  ``os._exit`` (the whole ``ProcessPoolExecutor``
                  breaks, the worst case the dispatcher must survive)
hang/straggler    sleeps ``straggler_delay_s`` of real wall time before
                  doing any work — the slow-worker shape hedging exists
                  for
poisoned report   completes but returns a :class:`PoisonedShardReport`
                  instead of its real report; the supervisor's
                  integrity validation must reject it, never merge it
duplicate result  the shard's (correct) result is delivered twice —
                  an at-least-once queue retrying a non-idempotent
                  delivery; dedup-by-shard-id must drop the second
================  =====================================================

Determinism follows the PR 4 rules: every draw comes from
``seeded_rng(seed, "shard:<id>")``, one fixed-width block of draws per
attempt, so the fault schedule of shard 7's attempt 2 is a pure
function of ``(seed, 7, 2)`` — the same whichever worker runs it,
however the pool interleaves, and bit-identical when the plan is
disabled (no plan, no draws, no perturbation of any other stream).

Faults change *when and whether an attempt finishes* — never what a
finished room computed.  Rooms are deterministic, so any schedule of
crashes, hangs, poisons and duplicates that the supervisor recovers
from must yield the exact fault-free result; that is the headline
contract XEXT17 verifies.

``max_faulty_attempts`` bounds the chaos per shard: attempts past it
run clean, so a supervisor allowed more attempts than that is
*guaranteed* to make progress — chaos tests terminate by construction,
not by luck.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .harness import seeded_rng

#: Draws consumed per attempt decision (crash? where? hang? poison?
#: duplicate?).  Fixed width keeps attempt k's block at a stable
#: offset in the shard's stream no matter which faults are enabled.
_DRAWS_PER_ATTEMPT = 5


class SimulatedWorkerCrash(RuntimeError):
    """An injected worker death (the soft, exception-shaped kind)."""


@dataclass(frozen=True)
class PoisonedShardReport:
    """The junk a compromised worker hands back instead of its report.

    Deliberately picklable: an *unpicklable* result would wedge
    ``ProcessPoolExecutor``'s result-handling thread itself (the
    deserialization error fires outside any future), which is a
    CPython implementation hazard, not a recoverable fleet fault.  The
    poison the supervisor must survive is a result that *arrives* but
    is wrong — wrong type, wrong shard, missing rooms — and that is
    exactly what integrity validation rejects.
    """

    shard_id: int
    note: str = "poisoned result from faulty worker"


@dataclass(frozen=True)
class ShardFaultDecision:
    """What one attempt at one shard is fated to suffer."""

    crash: bool = False
    #: Fraction of the shard's rooms completed (and checkpointed)
    #: before the crash fires — drawn in [0, 1).
    crash_after_fraction: float = 0.0
    hard: bool = False
    straggle: bool = False
    straggler_delay_s: float = 0.0
    poison: bool = False
    duplicate: bool = False

    @property
    def clean(self) -> bool:
        return not (self.crash or self.straggle or self.poison
                    or self.duplicate)

    def crash_after_rooms(self, num_rooms: int) -> int | None:
        """How many rooms this attempt completes before dying
        (``None`` when it does not crash).  Always strictly fewer than
        ``num_rooms`` — a crash must cost something."""
        if not self.crash:
            return None
        return min(int(self.crash_after_fraction * num_rooms),
                   max(num_rooms - 1, 0))


_CLEAN = ShardFaultDecision()


@dataclass(frozen=True)
class ProcessFaultPlan:
    """Seeded chaos knobs for the worker pool (picklable, frozen).

    Rates are independent per-attempt Bernoulli draws; a single
    attempt can straggle *and* crash (it sleeps, completes some rooms,
    then dies) — the compound case checkpoint resume exists for.
    """

    #: P(an attempt dies mid-shard).
    crash_rate: float = 0.0
    #: Crash via ``os._exit`` (breaks the whole pool) instead of an
    #: exception.  Only honored when the job says it is safe (a real
    #: worker process, never the driver's own interpreter).
    hard_crash: bool = False
    #: P(an attempt sleeps before working).
    straggler_rate: float = 0.0
    #: How long a straggling attempt sleeps (real seconds — wall-clock
    #: is the one thing process faults are allowed to touch).
    straggler_delay_s: float = 0.25
    #: P(a completing attempt returns poison instead of its report).
    poison_rate: float = 0.0
    #: P(a successful result is delivered a second time).
    duplicate_rate: float = 0.0
    #: Attempts beyond this index (0-based) run clean — the progress
    #: bound that makes chaos runs terminate by construction.
    max_faulty_attempts: int = 2

    def __post_init__(self) -> None:
        for field_name in ("crash_rate", "straggler_rate", "poison_rate",
                           "duplicate_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{field_name} must be in [0, 1], got {rate}"
                )
        if self.straggler_delay_s < 0:
            raise ValueError(
                f"straggler_delay_s must be >= 0, "
                f"got {self.straggler_delay_s}"
            )
        if self.max_faulty_attempts < 0:
            raise ValueError(
                f"max_faulty_attempts must be >= 0, "
                f"got {self.max_faulty_attempts}"
            )

    @property
    def active(self) -> bool:
        return (self.crash_rate > 0.0 or self.straggler_rate > 0.0
                or self.poison_rate > 0.0 or self.duplicate_rate > 0.0)


def shard_fault_decision(
    plan: ProcessFaultPlan | None,
    seed: int,
    shard_id: int,
    attempt: int,
) -> ShardFaultDecision:
    """The deterministic fate of ``(shard_id, attempt)`` under ``plan``.

    Walks ``attempt + 1`` fixed-width blocks of the shard's private
    ``seeded_rng(seed, "shard:<id>")`` stream and decides from the
    last, so every attempt's fate is stable regardless of who asks,
    how often, or in which process.  A disabled plan makes no draws at
    all.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if plan is None or not plan.active:
        return _CLEAN
    if attempt > plan.max_faulty_attempts:
        return _CLEAN
    rng = seeded_rng(seed, f"shard:{shard_id}")
    draws = rng.uniform(size=(attempt + 1) * _DRAWS_PER_ATTEMPT)
    block = draws[attempt * _DRAWS_PER_ATTEMPT:]
    return ShardFaultDecision(
        crash=bool(block[0] < plan.crash_rate),
        crash_after_fraction=float(block[1]),
        hard=plan.hard_crash,
        straggle=bool(block[2] < plan.straggler_rate),
        straggler_delay_s=plan.straggler_delay_s,
        poison=bool(block[3] < plan.poison_rate),
        duplicate=bool(block[4] < plan.duplicate_rate),
    )


def crash_now(hard: bool) -> None:
    """Die the way the decision says to (worker-side helper)."""
    if hard:
        os._exit(17)  # pragma: no cover - kills the worker process
    raise SimulatedWorkerCrash("injected worker crash")


__all__ = [
    "PoisonedShardReport",
    "ProcessFaultPlan",
    "ShardFaultDecision",
    "SimulatedWorkerCrash",
    "crash_now",
    "shard_fault_decision",
]
