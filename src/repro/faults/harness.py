"""Shared fault-injection machinery: seeded randomness and the harness.

Determinism is the whole point: a resilience experiment must be able to
say "at 20 % MP-frame loss with seed 7, ARQ delivered 99.3 %" and have
that number reproduce bit-for-bit.  Two rules make that possible:

* every random draw comes from :func:`seeded_rng` — a generator derived
  from ``(seed, crc32(label))``, so two injectors with different labels
  never share a stream and adding an injector never perturbs another's
  draws;
* fault state never flips "now" in wall time — activations ride the
  simulator's event heap (:meth:`FaultHarness.at`), interleaving
  deterministically with the experiment's own events.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

import numpy as np

from .. import obs
from ..net.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .audio import AcousticFaults, MicrophoneFaults
    from .net import MpLinkFaults, PiFaults


def seeded_rng(seed: int, label: str) -> np.random.Generator:
    """A generator keyed by ``(seed, crc32(label))``.

    The label folds in *which* injector is drawing, so the streams of
    distinct injectors are independent and stable under reordering.
    """
    return np.random.default_rng((seed, zlib.crc32(label.encode("utf-8"))))


class FaultCounter:
    """A named fault tally, mirrored into :mod:`repro.obs` as
    ``faults.<name>`` when observability is enabled.

    Injector code counts through this object unconditionally; the
    registry-backed counter makes the tally visible in obs exports and
    the plain ``value`` makes it readable either way.
    """

    __slots__ = ("name", "_counter")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counter = obs.counter(f"faults.{name}")

    def inc(self, amount: int = 1) -> None:
        self._counter.inc(amount)

    @property
    def value(self) -> int:
        return self._counter.value


class FaultHarness:
    """One handle over every injector attached to a rig.

    The harness owns the ``(sim, seed)`` pair, hands out labelled RNG
    streams, schedules activations on the simulated clock, and keeps a
    roster of injectors so an experiment can summarize everything that
    was thrown at the system in one call.

    Usage::

        harness = FaultHarness(sim, seed=7)
        air = harness.acoustic(channel)
        air.drop_speaker(position, start=3.2, end=6.2)
        link = harness.mp_link(switch.ports[bridge.pi_port],
                               loss_rate=0.2)
        ...
        sim.run(30.0)
        harness.summary()  # {"speaker_dropouts": 1, "mp_frames_lost": 31, ...}
    """

    def __init__(self, sim: Simulator, seed: int = 0) -> None:
        self.sim = sim
        self.seed = seed
        self.injectors: list[object] = []

    def rng(self, label: str) -> np.random.Generator:
        """A deterministic stream private to ``label``."""
        return seeded_rng(self.seed, label)

    def at(self, time: float, callback, *args) -> None:
        """Schedule a fault state flip at absolute sim time ``time``.

        Times at or before ``sim.now`` fire immediately (a fault can be
        active from the start of a run).
        """
        if time <= self.sim.now:
            callback(*args)
        else:
            self.sim.schedule_at(time, callback, *args)

    def register(self, injector):
        """Add an injector to the roster; returns it for chaining."""
        self.injectors.append(injector)
        return injector

    # ------------------------------------------------------------------
    # Injector factories (lazy imports avoid a package import cycle)
    # ------------------------------------------------------------------

    def acoustic(self, channel) -> "AcousticFaults":
        """The channel-side injector (speaker dropout/degradation,
        clock skew, noise bursts), installed on ``channel``."""
        from .audio import AcousticFaults

        return self.register(AcousticFaults(self.sim, channel, seed=self.seed))

    def microphone(self, microphone) -> "MicrophoneFaults":
        """A capture-side injector (mic failure, clipping), installed
        on ``microphone``."""
        from .audio import MicrophoneFaults

        return self.register(MicrophoneFaults(self.sim, microphone))

    def mp_link(self, direction, loss_rate: float = 0.0,
                corrupt_rate: float = 0.0,
                label: str = "mp_link") -> "MpLinkFaults":
        """A loss/corruption injector on one :class:`LinkDirection`."""
        from .net import MpLinkFaults

        return self.register(MpLinkFaults(
            direction, loss_rate=loss_rate, corrupt_rate=corrupt_rate,
            seed=self.seed, label=label,
        ))

    def pi(self, pi) -> "PiFaults":
        """A crash/restart injector on a :class:`RaspberryPi`."""
        from .net import PiFaults

        return self.register(PiFaults(self.sim, pi))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Merged fault tallies across every registered injector."""
        totals: dict[str, int] = {}
        for injector in self.injectors:
            for counter in getattr(injector, "counters", ()):
                totals[counter.name] = (
                    totals.get(counter.name, 0) + counter.value
                )
        return totals
