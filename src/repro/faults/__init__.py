"""``repro.faults`` — deterministic fault injection for the whole rig.

The paper evaluates the happy path plus one noisy-song scenario; a
production acoustic management plane must survive dead speakers,
saturated microphones, transient bursts, skewed device clocks, lossy
Music-Protocol links and crashing Pis.  This package injects exactly
those failures, **deterministically**:

* every injector draws from a ``(seed, label)``-derived generator, so a
  run is reproducible bit-for-bit from one seed;
* fault activations are **sim-time scheduled** — state flips ride the
  same event heap as the experiment, never wall clock;
* every injected fault is counted through :mod:`repro.obs`
  (``faults.*`` counters), so an instrumented run shows exactly what
  was thrown at the system;
* injectors plug into the existing components via first-class hook
  points (``AcousticChannel.set_fault_model``,
  ``Microphone.fault_model``, ``LinkDirection.fault_model``,
  ``RaspberryPi.crash``) — experiment code keeps building the same
  rigs and *adds* faults, it is never rewritten around them.

Fault taxonomy
--------------

================  ==============================  =======================
fault             injector                        plugs into
================  ==============================  =======================
speaker dropout   :class:`AcousticFaults`         channel render path
speaker degrade   :class:`AcousticFaults`         channel render path
clock skew        :class:`AcousticFaults`         channel emission path
noise burst       :class:`AcousticFaults`         channel noise beds
mic failure       :class:`MicrophoneFaults`       microphone capture
mic clipping      :class:`MicrophoneFaults`       microphone capture
MP frame loss     :class:`MpLinkFaults`           switch→Pi link delivery
MP frame corrupt  :class:`MpLinkFaults`           switch→Pi link delivery
Pi crash/restart  :class:`PiFaults`               RaspberryPi host
worker crash      :class:`ProcessFaultPlan`       fleet worker processes
worker straggler  :class:`ProcessFaultPlan`       fleet worker processes
poisoned report   :class:`ProcessFaultPlan`       fleet result path
duplicate result  :class:`ProcessFaultPlan`       fleet result path
================  ==============================  =======================

The last four are *process-level* faults (see :mod:`repro.faults.
process`): they attack the execution substrate the fleet runs on
rather than the simulated acoustics, and the
:class:`~repro.fleet.supervisor.FleetSupervisor` is the recovery
layer built to absorb them.
"""

from __future__ import annotations

from .audio import AcousticFaults, MicrophoneFaults
from .harness import FaultHarness, seeded_rng
from .net import MpLinkFaults, PiFaults
from .process import (
    PoisonedShardReport,
    ProcessFaultPlan,
    ShardFaultDecision,
    SimulatedWorkerCrash,
    shard_fault_decision,
)

__all__ = [
    "AcousticFaults",
    "FaultHarness",
    "MicrophoneFaults",
    "MpLinkFaults",
    "PiFaults",
    "PoisonedShardReport",
    "ProcessFaultPlan",
    "ShardFaultDecision",
    "SimulatedWorkerCrash",
    "seeded_rng",
    "shard_fault_decision",
]
