"""Command-line driver: regenerate any paper figure from a shell.

::

    python -m repro list                 # what can be run
    python -m repro run fig3             # one experiment, printed report
    python -m repro run all              # everything (a few minutes)
    python -m repro run fig4ab --song    # variant flags where relevant
    python -m repro render knock out.wav # write experiment audio you
                                         # can actually listen to

This is the adoption path for people who want the paper's numbers
without reading the benchmark suite; every command is a thin driver
over :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import experiments


def _workload_mix_names() -> list[str]:
    from .net.workload import WORKLOAD_MIXES

    return list(WORKLOAD_MIXES)


def _print_table(title: str, rows: list[tuple]) -> None:
    print(f"\n== {title}")
    widths = [max(len(str(row[col])) for row in rows)
              for col in range(len(rows[0]))] if rows else []
    for row in rows:
        cells = [str(cell).ljust(width) for cell, width in zip(row, widths)]
        print("   " + "  ".join(cells).rstrip())


def run_fig2a(args: argparse.Namespace) -> None:
    result = experiments.multiswitch_fft(
        num_switches=args.switches,
        noise_level_db=55.0 if args.noise else None,
    )
    rows = [("switch", "played Hz", "measured Hz", "level dB")]
    for name in sorted(result.played):
        rows.append((name, f"{result.played[name]:.0f}",
                     f"{result.detected.get(name, float('nan')):.1f}",
                     f"{result.levels_db.get(name, float('nan')):.1f}"))
    _print_table("Fig 2a: simultaneous switch identification", rows)
    print(f"   all identified: {result.all_identified}")


def run_fig2b(args: argparse.Namespace) -> None:
    result = experiments.fft_latency_cdf(num_samples=args.samples)
    rows = [("percentile", "ms")]
    rows += [(f"p{q}", f"{v:.4f}") for q, v in result.cdf_points()]
    _print_table("Fig 2b: FFT processing-time CDF (paper: p90 <= 0.35 ms)",
                 rows)


def run_fig3(args: argparse.Namespace) -> None:
    result = experiments.port_knocking_experiment()
    rows = [("t (s)", "sent kB", "recvd kB")]
    for time, sent in zip(result.sent_bytes.times[::4],
                          result.sent_bytes.values[::4]):
        rows.append((f"{time:.0f}", f"{sent / 1000:.0f}",
                     f"{result.received_bytes.value_at(time) / 1000:.0f}"))
    _print_table("Fig 3a: bytes sent / received", rows)
    print(f"   knocks heard: {result.knock_ports_heard}; "
          f"port opened at t = {result.opened_at:.1f} s")


def _print_precision_recall(label: str, pr: dict | None) -> None:
    if pr is None:
        return
    print(f"   {label} vs ground truth: "
          f"precision {pr['precision']:.2f}  recall {pr['recall']:.2f}  "
          f"(tp {pr['true_positives']}, fp {pr['false_positives']}, "
          f"fn {pr['false_negatives']})")


def run_fig4ab(args: argparse.Namespace) -> None:
    workload = getattr(args, "workload", None)
    result = experiments.heavy_hitter_experiment(
        with_song=args.song, workload=workload,
        num_flows=32 if workload else 10,
    )
    condition = "with song" if args.song else "clean"
    if workload:
        condition += f", workload {workload}"
    rows = [("interval end", "heavy-bucket windows")]
    rows += [(f"{t:.0f}", int(v)) for t, v in zip(
        result.per_interval_heavy_counts.times,
        result.per_interval_heavy_counts.values)]
    _print_table(f"Fig 4a/b ({condition}): heavy hitter detection", rows)
    print(f"   heavy flow {result.heavy_flow} -> "
          f"{result.heavy_frequency:.0f} Hz; detected: "
          f"{result.heavy_detected}; false positives: "
          f"{len(result.false_positive_frequencies)}")
    _print_precision_recall("heavy hitter", result.precision_recall)


def run_fig4cd(args: argparse.Namespace) -> None:
    workload = getattr(args, "workload", None)
    result = experiments.port_scan_experiment(with_song=args.song,
                                              workload=workload)
    condition = "with song" if args.song else "clean"
    if workload:
        condition += f", workload {workload}"
    _print_table(f"Fig 4c/d ({condition}): port scan detection", [
        ("scan detected", result.scan_detected),
        ("ports heard", len(result.ports_heard)),
        ("sweep order preserved",
         result.ports_heard == sorted(result.ports_heard)),
    ])
    _print_precision_recall("port scan", result.precision_recall)


def run_fig5ab(args: argparse.Namespace) -> None:
    result = experiments.load_balancing_experiment(
        workload=getattr(args, "workload", None)
    )
    rows = [("t (s)", "queue pkts")]
    rows += [(f"{t:.1f}", int(v)) for t, v in zip(
        result.queue_series.times[::2], result.queue_series.values[::2])]
    _print_table("Fig 5a: queue under ramping load (split on 700 Hz tone)",
                 rows)
    print(f"   split installed at t = {result.split_time:.2f} s "
          f"(paper run: 3.7 s); final queue {result.final_queue:.0f}")
    if result.workload:
        print(f"   background workload {result.workload}: "
              f"{result.background_packets} packets")


def run_fig5cd(args: argparse.Namespace) -> None:
    result = experiments.queue_monitor_experiment()
    tone = {"low": "500 Hz", "medium": "600 Hz", "high": "700 Hz"}
    rows = [("t (s)", "tone", "band")]
    rows += [(f"{t:.1f}", tone[band], band)
             for t, band in result.band_history]
    _print_table("Fig 5c/d: queue bands by ear", rows)


def run_fig6(args: argparse.Namespace) -> None:
    rows = [("room", "fan", "line dB", "floor dB", "prominence dB")]
    for room in ("datacenter", "office"):
        for fan_on in (True, False):
            panel = experiments.fan_spectrogram_panel(room, fan_on)
            rows.append((room, "ON" if fan_on else "OFF",
                         f"{panel.blade_line_level_db:.1f}",
                         f"{panel.noise_floor_db:.1f}",
                         f"{panel.line_prominence_db:.1f}"))
    _print_table("Fig 6: blade-pass line vs room floor", rows)


def run_fig7(args: argparse.Namespace) -> None:
    rows = [("room", "on-on max", "on-off min", "separation", "detected at")]
    for room in ("datacenter", "office"):
        result = experiments.fan_failure_experiment(room=room)
        rows.append((room, f"{result.on_on_max_score:.1f}",
                     f"{result.on_off_min_score:.1f}",
                     f"{result.separation_ratio:.1f}x",
                     f"{result.detection_time:.1f} s"))
    _print_table("Fig 7: amplitude-difference failure detection", rows)


def run_xbase(args: argparse.Namespace) -> None:
    workload = getattr(args, "workload", None)
    sketch = experiments.sketch_vs_mdn(
        workload=workload, num_flows=32 if workload else 10,
    )
    _print_table("XBASE1: sketch vs MDN", [
        ("MDN / sketch detected", f"{sketch.mdn_detected} / "
         f"{sketch.sketch_detected}"),
    ])
    _print_precision_recall("MDN detector", sketch.mdn_precision_recall)
    ecn = experiments.ecn_vs_mdn()
    _print_table("XBASE2: notification latency", [
        ("MDN tone", f"{ecn.mdn_latency * 1000:.0f} ms"),
        ("ECN echo", f"{ecn.ecn_latency * 1000:.0f} ms"),
    ])
    oob = experiments.inband_vs_oob()
    _print_table("XBASE3: delivery through data-plane failure", [
        ("in-band", f"{oob.inband_delivery_rate:.2f}"),
        ("acoustic", f"{oob.acoustic_delivery_rate:.2f}"),
    ])


def run_xext(args: argparse.Namespace) -> None:
    relay = experiments.relay_experiment()
    _print_table("XEXT1: multi-hop relay", [
        ("direct heard", relay.direct_heard),
        ("relayed heard", relay.relayed_heard),
        ("latency", f"{relay.end_to_end_latency:.2f} s"),
    ])
    spreader = experiments.superspreader_experiment("superspreader")
    ddos = experiments.superspreader_experiment("ddos")
    _print_table("XEXT2: chord telemetry", [
        ("superspreader detected", spreader.attack_detected),
        ("DDoS victim detected", ddos.attack_detected),
    ])
    ultra = experiments.ultrasound_experiment()
    _print_table("XEXT3: ultrasound capacity", [
        ("audible", ultra.audible_capacity),
        ("extended", ultra.extended_capacity),
    ])
    modem = experiments.modem_experiment()
    _print_table("XEXT4: FSK modem", [
        ("airtime", f"{modem.airtime_s:.2f} s for {modem.payload_bytes} B"),
        ("decoded clean / noisy",
         f"{modem.decoded_ok} / {modem.decoded_ok_with_song}"),
    ])


def run_xext12(args: argparse.Namespace) -> None:
    result = experiments.resilience_experiment(
        smoke=getattr(args, "smoke", False)
    )
    _print_table("XEXT12a: MP frame loss — ARQ vs fire-and-forget", [
        (f"loss {point.loss_rate:.0%}",
         f"bare {point.no_arq_delivery:.1%}  "
         f"arq {point.arq_delivery:.1%}  "
         f"({point.retransmits} rtx, {point.expired} expired, "
         f"ack p̄ {point.mean_ack_latency_ms:.1f} ms)")
        for point in result.arq
    ])
    episode = result.failover
    latency = (f"{episode.failover_latency:.2f} s"
               if episode.failover_latency is not None else "never")
    failback = (f"{episode.failback_at:.2f} s"
                if episode.failback_at is not None else "never")
    _print_table("XEXT12b: speaker-death failover episode", [
        ("speaker outage", f"{episode.fault_start:.1f}–"
         f"{episode.fault_end:.1f} s"),
        ("first missed beat", f"{episode.first_missed_beat:.2f} s"),
        ("failover latency", f"{latency} "
         f"(budget {2 * episode.period:.2f} s)"),
        ("in-band coverage", f"{episode.inband_delivered} beats "
         f"at {episode.inband_delivery_rate:.0%}"),
        ("failback to acoustic", failback),
        ("final health", episode.final_state.name),
    ])
    _print_table("XEXT12c: dropout duty cycle vs coverage", [
        (f"fault rate {point.fault_rate:.0%}",
         f"acoustic {point.detection_accuracy:.1%}  "
         f"covered {point.covered_fraction:.1%}  "
         f"({point.failovers} failovers, "
         f"{point.inband_delivered} in-band beats)")
        for point in result.resilience
    ])


def run_xext13(args: argparse.Namespace) -> None:
    result = experiments.spectrum_agility_experiment(
        smoke=getattr(args, "smoke", False)
    )

    def _policy_row(point):
        extra = ""
        if point.policy == "agility":
            latency = (f"{point.migration_latency:.2f} s"
                       if point.migration_latency is not None else "never")
            extra = (f"  ({point.migrations_committed} migrations, "
                     f"epoch {point.plan_epoch}, latency {latency})")
        elif point.policy == "failover":
            extra = (f"  ({point.failovers} failovers, "
                     f"{point.health_transitions} health transitions)")
        return (point.policy,
                f"clean {point.clean_delivery:.1%}  "
                f"jammed {point.delivery:.1%}{extra}")

    headline = result.agility
    _print_table(
        f"XEXT13a: {headline.covered_fraction:.0%} of the allocation "
        f"jammed from t = {headline.interferer_start:.1f} s", [
            _policy_row(result.static),
            _policy_row(result.failover),
            _policy_row(result.agility),
        ])
    _print_table("XEXT13b: interference bandwidth vs delivery", [
        (f"covered {point.covered_fraction:.0%}",
         f"static {point.static_delivery:.1%}  "
         f"agility {point.agility_delivery:.1%}  "
         f"({point.migrations} migrations)")
        for point in result.sweep
    ])


def run_xext14(args: argparse.Namespace) -> None:
    result = experiments.infra_experiment(smoke=getattr(args, "smoke", False))
    wedged, storm, shared = result.wedged, result.storm, result.shared

    def _latency(value):
        return f"{value:.2f} s" if value is not None else "never"

    _print_table(
        f"XEXT14a: Pi wedged at t = {wedged.wedge_at:.1f} s, "
        f"restarts at t = {wedged.recover_at:.1f} s", [
            ("deadline-only",
             f"failover after {_latency(wedged.baseline_latency)}  "
             f"({wedged.baseline_expired} frames rode the full deadline)"),
            ("circuit breaker",
             f"failover after {_latency(wedged.breaker_latency)}  "
             f"({wedged.breaker_trips} trips, "
             f"{wedged.fast_failed} sends fast-failed, "
             f"{wedged.breaker_expired} expired)"),
            ("speedup",
             f"{wedged.speedup:.1f}x" if wedged.speedup else "n/a"),
            ("failback", f"acoustic again at {_latency(wedged.failback_at)}"
             if wedged.failback_at is not None else "never"),
        ])
    _print_table(
        f"XEXT14b: {storm.storm_sends} sends in "
        f"{storm.storm_duration:.1f} s against a crashed Pi "
        f"(bucket rate {storm.bucket_rate:.0f}/s, "
        f"burst {storm.bucket_burst:.0f})", [
            ("no admission",
             f"peak in-flight {storm.bare_peak_in_flight}"),
            ("token bucket",
             f"peak in-flight {storm.limited_peak_in_flight} "
             f"(bound {storm.admitted_bound:.0f})  "
             f"admitted {storm.arq_admitted}, shed {storm.arq_shed}"),
            ("controller ingest",
             f"{storm.controller_detections} detections = "
             f"{storm.controller_dispatched} dispatched + "
             f"{storm.controller_shed} shed "
             f"(conserved: {storm.conservation_holds})"),
        ])
    _print_table(
        f"XEXT14c: two controllers, one microphone, one spectra cache "
        f"({shared.windows_each} windows each)", [
            ("cache", f"{shared.cache_hits} hits / "
             f"{shared.cache_misses} misses  "
             f"(hit rate {shared.hit_rate:.1%})"),
            ("events", f"{shared.events_a} vs {shared.events_b}, "
             f"identical: {shared.events_identical}"),
        ])


def run_xext15(args: argparse.Namespace) -> None:
    result = experiments.fleet_experiment(smoke=getattr(args, "smoke", False))
    _print_table(
        f"XEXT15: fleet of {result.num_rooms} rooms x "
        f"{result.switches_per_room} switches = {result.num_switches} "
        f"switches, ~{result.nominal_emissions_per_second:.0f} "
        f"emissions/s over {result.horizon:.1f} s "
        f"(host has {result.cpu_count} CPU core(s))", [
            ("delivery",
             f"{result.delivered}/{result.emissions} chirps "
             f"({result.delivery_ratio:.1%}), "
             f"{result.spurious_onsets} spurious onsets"),
            ("determinism",
             f"two serial runs identical: {result.determinism_ok}"),
        ])
    _print_table("XEXT15: shard count vs wall clock", [
        (f"{point.backend} x{point.num_shards}",
         f"{point.wall_s:6.2f} s  speedup {point.speedup:4.2f}x  "
         f"rtf {point.real_time_factor:6.1f} sim-s/s  "
         f"identical {point.identical}"
         + (f"  FAILURES {point.failures}" if point.failures else ""))
        for point in result.points
    ])
    path = result.export()
    print(f"\n   wrote {path}")


def run_xext16(args: argparse.Namespace) -> None:
    result = experiments.workload_experiment(
        smoke=getattr(args, "smoke", False)
    )
    _print_table(
        f"XEXT16: workload mixes over {result.mix_duration:.0f} s "
        f"({result.num_buckets} buckets, "
        f"{result.presence_period * 1000:.0f} ms presence grid)", [
            (point.name,
             f"{point.num_flows} flows, {point.packets} pkts  "
             f"hh P/R {point.heavy_hitter['precision']:.2f}/"
             f"{point.heavy_hitter['recall']:.2f}  "
             f"scan P/R {point.port_scan['precision']:.2f}/"
             f"{point.port_scan['recall']:.2f}  "
             f"({point.wall_s:.2f} s wall)")
            for point in result.mixes
        ])
    _print_table("XEXT16: vectorized driver scale", [
        (f"{point.num_flows:>9,} flows",
         f"{point.packets:>9,} pkts  build {point.build_s:5.2f} s  "
         f"run {point.run_s:5.2f} s  "
         f"{point.packets_per_wall_second:>9,.0f} pkt/s")
        for point in result.scale
    ])
    speedup = result.speedup
    _print_table("XEXT16: vectorized vs per-flow reference", [
        (f"{speedup.num_flows:,} flows",
         f"vector {speedup.vectorized_wall_s:.3f} s  "
         f"reference {speedup.reference_wall_s:.3f} s  "
         f"speedup {speedup.speedup:.1f}x  "
         f"counts identical: {speedup.counts_match}"),
    ])
    path = result.export()
    print(f"\n   wrote {path}")


def run_xext17(args: argparse.Namespace) -> None:
    result = experiments.chaos_experiment(smoke=getattr(args, "smoke", False))
    _print_table(
        f"XEXT17: chaos sweep over {result.num_rooms} rooms x "
        f"{result.switches_per_room} switches, {result.num_shards} "
        f"shards / {result.workers} workers "
        f"(host has {result.cpu_count} CPU core(s))", [
            ("serial reference", f"{result.serial_wall_s:6.2f} s wall"),
            ("supervised, no faults",
             f"{result.baseline_wall_s:6.2f} s wall  "
             f"identical {result.baseline_identical}"),
        ])
    _print_table("XEXT17: fault mix vs recovery", [
        (point.name,
         f"{point.wall_s:6.2f} s  overhead "
         f"{point.recovery_overhead:4.2f}x  "
         f"attempts {point.attempts_total:2d}  "
         f"crashes {point.crashes_detected}  "
         f"hedged {point.stragglers_hedged}  "
         f"resumed {point.rooms_resumed}  "
         f"rebuilds {point.pool_rebuilds}  "
         f"exact {point.identical}"
         + (f"  FAILURES {point.failures}" if point.failures else ""))
        for point in result.points
    ])
    _print_table("XEXT17: verdict", [
        ("exact recovery",
         f"all points bit-identical to fault-free serial reference: "
         f"{result.all_exact}"),
        ("worst overhead", f"{result.worst_overhead:.2f}x baseline"),
    ])
    path = result.export()
    print(f"\n   wrote {path}")


def run_obs(args: argparse.Namespace) -> None:
    """Run one experiment under ``repro.obs`` and print/export metrics."""
    from pathlib import Path

    from . import obs

    registry, tracer = obs.enable()
    try:
        EXPERIMENTS[args.experiment][1](args)
        print()
        print(registry.report())
        print()
        print(tracer.report())
        hits = registry.total("channel.memo_hits")
        misses = registry.total("channel.memo_misses")
        renders = hits + misses
        print("\n== derived")
        print(f"   render memo hit rate: "
              f"{hits / renders if renders else 0.0:.1%} "
              f"({hits:.0f}/{renders:.0f})")
        occupancy = registry.get("queue.occupancy")
        if isinstance(occupancy, obs.Histogram) and occupancy.count:
            print(f"   queue occupancy: p50={occupancy.p50:.0f} "
                  f"p90={occupancy.p90:.0f} max={occupancy.max:.0f} pkts "
                  f"({occupancy.count} samples)")
        path = Path(".benchmarks") / f"OBS_{args.experiment}.json"
        registry.export(path, extra={
            "experiment": args.experiment,
            "trace": tracer.snapshot(limit=200),
        })
        print(f"   wrote {path}")
    finally:
        obs.disable()


EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], None]]] = {
    "fig2a": ("FFT of simultaneous switches", run_fig2a),
    "fig2b": ("FFT processing-time CDF", run_fig2b),
    "fig3": ("port knocking", run_fig3),
    "fig4ab": ("heavy-hitter detection", run_fig4ab),
    "fig4cd": ("port-scan detection", run_fig4cd),
    "fig5ab": ("load balancing", run_fig5ab),
    "fig5cd": ("queue monitoring", run_fig5cd),
    "fig6": ("fan spectrograms", run_fig6),
    "fig7": ("fan failure detection", run_fig7),
    "xbase": ("baseline comparisons", run_xbase),
    "xext": ("extensions (relay, DDoS, ultrasound, modem)", run_xext),
    "xext12": ("resilience (fault injection, ARQ, failover)", run_xext12),
    "xext13": ("spectrum agility (interference replanning)", run_xext13),
    "xext14": ("infra hardening (breaker, admission, spectra cache)",
               run_xext14),
    "xext15": ("fleet scale-out (sharded rooms, merged observability)",
               run_xext15),
    "xext16": ("workload generator (mixes -> precision/recall, scale)",
               run_xext16),
    "xext17": ("chaos fleet (process faults, supervised exact recovery)",
               run_xext17),
}


def _render_knock():
    """The port-knocking melody plus surrounding traffic silence."""
    from .experiments.rigs import build_testbed
    from .net import Action
    from .core.apps import KnockConfig, KnockEmitter

    testbed = build_testbed("single", default_action=Action.drop())
    allocation = testbed.plan.allocate("s1", 3)
    config = KnockConfig([7001, 7002, 7003], 8080, allocation)
    KnockEmitter(testbed.topo.switches["s1"], testbed.agents["s1"], config)
    h1 = testbed.topo.hosts["h1"]
    for index, port in enumerate(config.knock_ports):
        testbed.sim.schedule_at(0.5 + index,
                                lambda p=port: h1.send_to("10.0.0.2", p))
    testbed.sim.run(4.0)
    return testbed.controller.microphone.record(testbed.channel, 0.0, 4.0)


def _render_chirps():
    """The Figure 5c/5d queue-band chirps: 500 -> 600 -> 700 -> 500 Hz."""
    from .experiments.rigs import build_testbed
    from .core.apps import BandToneMap, FIG5_BAND_FREQUENCIES, QueueChirper
    from .net import OnOffSource

    testbed = build_testbed("single")
    port = testbed.topo.port_towards("s1", "h2")
    tones = BandToneMap(FIG5_BAND_FREQUENCIES["low"],
                        FIG5_BAND_FREQUENCIES["medium"],
                        FIG5_BAND_FREQUENCIES["high"])
    QueueChirper(testbed.sim, testbed.topo.switches["s1"], port,
                 testbed.agents["s1"], tones)
    burst = OnOffSource(testbed.topo.hosts["h1"], "10.0.0.2", 80,
                        rate_pps=500, on_duration=1.5, off_duration=20.0,
                        start=1.0)
    burst.launch()
    testbed.sim.run(8.0)
    return testbed.controller.microphone.record(testbed.channel, 0.0, 8.0)


def _render_fan():
    """A datacenter server dying at t = 4 s (the §7 soundscape)."""
    from .fans import Server, datacenter_scene

    server = Server("target")
    server.fail_all(4.0)
    scene = datacenter_scene(duration=8.0, server=server)
    return scene.capture(0.0, 8.0)


def _render_song():
    """Ten seconds of the Cheap-Thrills-substitute interferer."""
    from .audio import SongNoise

    return SongNoise(seed=2018, level_db=60.0).render(10.0)


RENDERS: dict[str, tuple[str, Callable[[], object]]] = {
    "knock": ("the three-tone port-knock melody (§4)", _render_knock),
    "chirps": ("queue-band chirps 500/600/700 Hz (§6)", _render_chirps),
    "fan": ("a datacenter server dying at t=4 s (§7)", _render_fan),
    "song": ("the pop-song interferer used in Fig 4b/4d", _render_song),
}


def run_render(args: argparse.Namespace) -> None:
    from .audio.wav import write_wav

    _description, renderer = RENDERS[args.scene]
    signal = renderer()
    path = write_wav(signal, args.output)
    print(f"wrote {signal.duration:.1f} s of audio to {path} "
          f"({path.stat().st_size} bytes) — have a listen.")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Music-Defined Networking reproduction driver",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list runnable experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/study to regenerate",
    )
    run_parser.add_argument("--song", action="store_true",
                            help="add the pop-song interferer (fig4*)")
    run_parser.add_argument("--noise", action="store_true",
                            help="add background noise (fig2a)")
    run_parser.add_argument("--switches", type=int, default=5,
                            help="switch count for fig2a")
    run_parser.add_argument("--samples", type=int, default=1000,
                            help="sample count for fig2b")
    run_parser.add_argument("--smoke", action="store_true",
                            help="shrink sweeps for CI (xext12-xext16)")
    run_parser.add_argument(
        "--workload", choices=sorted(_workload_mix_names()), default=None,
        help="drive fig4*/fig5ab/xbase with a named seeded workload mix",
    )

    render_parser = subparsers.add_parser(
        "render", help="write experiment audio to a WAV file"
    )
    render_parser.add_argument("scene", choices=sorted(RENDERS),
                               help="which soundscape to render")
    render_parser.add_argument("output", help="output .wav path")

    obs_parser = subparsers.add_parser(
        "obs", help="run one experiment under the observability layer"
    )
    obs_parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS),
        help="which figure/study to run instrumented",
    )
    obs_parser.add_argument("--song", action="store_true",
                            help="add the pop-song interferer (fig4*)")
    obs_parser.add_argument("--noise", action="store_true",
                            help="add background noise (fig2a)")
    obs_parser.add_argument("--switches", type=int, default=5,
                            help="switch count for fig2a")
    obs_parser.add_argument("--samples", type=int, default=1000,
                            help="sample count for fig2b")
    obs_parser.add_argument("--smoke", action="store_true",
                            help="shrink sweeps for CI (xext12-xext16)")
    obs_parser.add_argument(
        "--workload", choices=sorted(_workload_mix_names()), default=None,
        help="drive fig4*/fig5ab/xbase with a named seeded workload mix",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (description, _runner) in sorted(EXPERIMENTS.items()):
            print(f"  {name:<8} {description}")
        print("renderable soundscapes (repro render <scene> <out.wav>):")
        for name, (description, _renderer) in sorted(RENDERS.items()):
            print(f"  {name:<8} {description}")
        return 0
    if args.command == "render":
        run_render(args)
        return 0
    if args.command == "obs":
        run_obs(args)
        return 0
    targets = (sorted(EXPERIMENTS) if args.experiment == "all"
               else [args.experiment])
    for name in targets:
        EXPERIMENTS[name][1](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
