"""``repro.obs`` — sim-time observability for the whole stack.

The two vectorization PRs made the hot paths fast; this package makes
them *visible* at production scale without slowing them back down.  It
provides

* a :class:`MetricsRegistry` of hierarchically named counters, gauges
  and histograms (p50/p90/p99 — the Fig 2b quantiles), e.g.
  ``controller.window_ms`` or ``channel.memo_hits``;
* a bounded ring-buffer :class:`Tracer` whose spans carry both sim time
  and ``perf_counter`` wall time;
* a **zero-overhead-when-disabled hook API**: components grab their
  handles at construction, and every gated site costs one ``is not
  None`` check when observability is off.

Usage::

    import repro.obs as obs

    registry, tracer = obs.enable()     # before building the testbed
    run_experiment()
    print(registry.report())
    print(tracer.report())
    registry.export(".benchmarks/OBS_fig5ab.json")
    obs.disable()

Enablement is process-global and must happen **before** the observed
components are constructed (they capture their instruments in
``__init__``).  The ``python -m repro obs <figure>`` CLI verb does
exactly this around any experiment.

Components keep API-compatible per-instance counters (e.g.
``Simulator.events_processed``) through :func:`counter`: when disabled
it hands out a free-floating :class:`Counter` (as cheap as the plain
int it replaced); when enabled, the same counter is also registered —
with name de-duplication — so it shows up in reports and exports.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_HISTOGRAM_CAPACITY,
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import DEFAULT_TRACE_CAPACITY, Span, Tracer

__all__ = [
    "CallbackGauge",
    "Counter",
    "DEFAULT_HISTOGRAM_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "span",
]

_registry: MetricsRegistry | None = None
_tracer: Tracer | None = None


def enable(registry: MetricsRegistry | None = None,
           tracer: Tracer | None = None) -> tuple[MetricsRegistry, Tracer]:
    """Install (or reuse) the process-global registry + tracer.

    Idempotent: enabling while already enabled returns the current
    pair.  Call *before* constructing the components to observe.
    """
    global _registry, _tracer
    if _registry is None:
        _registry = registry if registry is not None else MetricsRegistry()
    if _tracer is None:
        _tracer = tracer if tracer is not None else Tracer()
    return _registry, _tracer


def disable() -> None:
    """Tear down global observability (already-wired components keep
    their free-standing instruments but stop being globally visible)."""
    global _registry, _tracer
    _registry = None
    _tracer = None


def enabled() -> bool:
    return _registry is not None


def get_registry() -> MetricsRegistry | None:
    """The global registry, or None when observability is disabled."""
    return _registry


def get_tracer() -> Tracer | None:
    """The global tracer, or None when observability is disabled."""
    return _tracer


def counter(name: str) -> Counter:
    """A per-call-site counter: registered (with de-duplicated name)
    when enabled, free-floating — but fully functional — otherwise."""
    if _registry is None:
        return Counter(name)
    return _registry.register(Counter(name))


def gauge(name: str) -> Gauge:
    """A gauge, registered when enabled (see :func:`counter`)."""
    if _registry is None:
        return Gauge(name)
    return _registry.register(Gauge(name))


def histogram(name: str,
              capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> Histogram:
    """A histogram, registered when enabled (see :func:`counter`)."""
    if _registry is None:
        return Histogram(name, capacity)
    return _registry.register(Histogram(name, capacity))


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """A tracer span when enabled, a shared no-op otherwise."""
    if _tracer is None:
        return _NULL_SPAN
    return _tracer.span(name, **attrs)
