"""A bounded ring-buffer tracer with sim-time + wall-time spans.

Latency claims about the listening pipeline only hold up when both
clocks are visible (ChirpCast, teleorchestra — PAPERS.md): a span is
stamped with the *simulation* time it covers (when a clock is bound)
and the ``perf_counter`` wall time it actually cost.  The buffer is a
``deque(maxlen=capacity)`` so an hour-long run cannot grow memory —
older spans fall off the back; ``started`` keeps the lifetime total.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

#: Default span ring capacity.
DEFAULT_TRACE_CAPACITY = 2048


@dataclass
class Span:
    """One completed (or in-flight) traced region."""

    name: str
    attrs: dict = field(default_factory=dict)
    #: Simulation-clock stamps (None when no clock is bound).
    sim_start: float | None = None
    sim_end: float | None = None
    #: ``perf_counter`` stamps, seconds.
    wall_start: float = 0.0
    wall_end: float = 0.0
    #: Nesting depth at entry (0 = top level).
    depth: int = 0

    @property
    def wall_ms(self) -> float:
        return (self.wall_end - self.wall_start) * 1e3

    @property
    def sim_duration(self) -> float | None:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "wall_ms": self.wall_ms,
            "depth": self.depth,
        }


class _SpanContext:
    """Context manager that finalizes a span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span)
        return False


class Tracer:
    """Bounded span recorder.

    Parameters
    ----------
    capacity:
        Ring size; the oldest completed spans are evicted first.
    clock:
        Optional zero-argument callable returning the current simulation
        time.  ``Simulator`` binds itself via :meth:`bind_clock` at
        construction when tracing is enabled.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY,
                 clock: Callable[[], float] | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._clock = clock
        self._depth = 0
        #: Lifetime count of spans started (survives ring eviction).
        self.started = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock used for sim-time stamps."""
        self._clock = clock

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a traced region::

            with tracer.span("render", listener=position):
                ...
        """
        sim_now = self._clock() if self._clock is not None else None
        record = Span(name=name, attrs=attrs, sim_start=sim_now,
                      wall_start=time.perf_counter(), depth=self._depth)
        self._depth += 1
        self.started += 1
        return _SpanContext(self, record)

    def _finish(self, span: Span) -> None:
        span.wall_end = time.perf_counter()
        if self._clock is not None:
            span.sim_end = self._clock()
        self._depth = max(0, self._depth - 1)
        self._spans.append(span)

    @property
    def spans(self) -> tuple[Span, ...]:
        """Completed spans, oldest first (bounded by ``capacity``)."""
        return tuple(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._depth = 0

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self._spans if span.name == name]

    def report(self, limit: int = 15) -> str:
        """Aggregate wall time per span name plus the slowest spans."""
        totals: dict[str, tuple[int, float, float]] = {}
        for span in self._spans:
            count, total, worst = totals.get(span.name, (0, 0.0, 0.0))
            totals[span.name] = (count + 1, total + span.wall_ms,
                                 max(worst, span.wall_ms))
        lines = [f"== trace ({len(self._spans)} spans retained, "
                 f"{self.started} started)"]
        for name in sorted(totals):
            count, total, worst = totals[name]
            lines.append(
                f"   {name:<32} n={count:<7} total={total:.2f} ms "
                f"mean={total / count:.4f} ms worst={worst:.4f} ms"
            )
        slowest = sorted(self._spans, key=lambda s: s.wall_ms,
                         reverse=True)[:limit]
        if slowest:
            lines.append("   -- slowest spans")
            for span in slowest:
                sim = ("" if span.sim_start is None
                       else f" @t={span.sim_start:.3f}s")
                lines.append(
                    f"   {'  ' * span.depth}{span.name}{sim} "
                    f"{span.wall_ms:.4f} ms {span.attrs or ''}"
                )
        return "\n".join(lines)

    def snapshot(self, limit: int | None = None) -> list[dict]:
        spans = list(self._spans)
        if limit is not None:
            spans = spans[-limit:]
        return [span.snapshot() for span in spans]
