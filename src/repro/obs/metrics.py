"""Metric instruments and the hierarchical registry behind ``repro.obs``.

Three instrument kinds cover everything the experiments need to see:

* :class:`Counter` — monotonically increasing totals (events processed,
  memo hits, drops);
* :class:`Gauge` — last-observed values, either pushed (``set``) or
  pulled at snapshot time (:class:`CallbackGauge`, e.g. heap depth);
* :class:`Histogram` — bounded-reservoir distributions with the
  quantiles the paper's Fig 2b reports (p50/p90/p99).

Instruments live in a :class:`MetricsRegistry` under hierarchical
dotted names (``controller.window_ms``, ``channel.memo_hits``).  The
registry renders a human-readable report, snapshots to plain dicts and
exports JSON (``.benchmarks/OBS_*.json``).  Instruments can also float
free of any registry — that is how components keep per-instance
counters API-compatible when observability is disabled (see
``repro.obs``).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable

#: Default histogram reservoir size.  4096 samples bound memory while
#: keeping p99 meaningful for any experiment-scale stream.
DEFAULT_HISTOGRAM_CAPACITY = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int | float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one (fleet rollup)."""
        self.value += other.value
        return self

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value instrument (queue occupancy, heap depth...)."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def merge(self, other: "Gauge | CallbackGauge",
              policy: str = "last") -> "Gauge":
        """Fold another gauge in under ``policy``.

        ``"last"`` — merge order wins: the other gauge's value replaces
        this one's, provided the other was ever set (an untouched gauge
        never overwrites a live reading).  ``"max"`` — keep the larger
        of the two live readings (peak rollup, e.g. per-shard heap
        peaks).  A :class:`CallbackGauge` on the other side is sampled
        at merge time and treated as a single live update.
        """
        if policy not in ("last", "max"):
            raise ValueError(f"unknown gauge merge policy {policy!r}")
        other_updates = getattr(other, "updates", 1)
        if other_updates:
            other_value = other.value
            if policy == "last" or not self.updates \
                    or other_value > self.value:
                self.value = other_value
        self.updates += other_updates
        return self

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value, "updates": self.updates}


class CallbackGauge:
    """A gauge evaluated lazily at snapshot time — zero hot-path cost."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    @property
    def value(self) -> float:
        return self.fn()

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution with running stats and reservoir quantiles.

    Keeps exact ``count``/``sum``/``min``/``max`` over every observation
    plus a bounded ring of the most recent ``capacity`` samples;
    quantiles are computed over the retained ring (exact until the ring
    wraps, recent-biased after).
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_capacity", "_cursor")

    def __init__(self, name: str,
                 capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._capacity = capacity
        self._cursor = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._ring_insert(value)

    def _ring_insert(self, value: float) -> None:
        """Put one sample into the bounded ring (no running stats)."""
        if len(self._samples) < self._capacity:
            self._samples.append(value)
        else:
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._capacity

    def retained_samples(self) -> list[float]:
        """The ring's samples in observation order (oldest first)."""
        if len(self._samples) < self._capacity:
            return list(self._samples)
        return self._samples[self._cursor:] + self._samples[:self._cursor]

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in: exact running stats, then the
        other's retained ring appended in observation order.

        ``count``/``sum``/``min``/``max`` stay exact under any merge;
        quantiles remain exact while the combined retained samples fit
        this histogram's capacity and keep the usual recent bias after.
        Merging an empty histogram is a no-op (an idle shard cannot
        pollute a fleet rollup with its ``inf`` sentinels).
        """
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for value in other.retained_samples():
            self._ring_insert(value)
        return self

    @property
    def mean(self) -> float:
        """Arithmetic mean; 0.0 (never NaN) for an empty histogram."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the retained samples.
        An empty histogram reports 0.0 for every quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


Instrument = Counter | Gauge | CallbackGauge | Histogram


class MetricsRegistry:
    """Hierarchically named instruments for one deployment/run.

    ``counter``/``gauge``/``histogram`` get-or-create shared
    instruments by name (ad-hoc use: benchmarks, experiments).
    :meth:`register` attaches an externally owned instrument and
    de-duplicates colliding names with a numeric suffix, which is how
    per-component-instance counters stay per-instance while remaining
    visible in one report.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    # -- creation ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> Histogram:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = Histogram(name, capacity)
        self._instruments[name] = instrument
        return instrument

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> CallbackGauge:
        """Register a pull-style gauge evaluated at snapshot time."""
        return self.register(CallbackGauge(name, fn))

    def _get_or_create(self, name: str, cls) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = cls(name)
        self._instruments[name] = instrument
        return instrument

    def register(self, instrument):
        """Attach an externally created instrument, de-duplicating its
        name (``name``, ``name#2``, ``name#3``...).  Returns the
        instrument, whose ``name`` reflects the registered key."""
        base = instrument.name
        name, suffix = base, 2
        while name in self._instruments:
            name = f"{base}#{suffix}"
            suffix += 1
        instrument.name = name
        self._instruments[name] = instrument
        return instrument

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._instruments if n.startswith(prefix))

    def total(self, prefix: str) -> float:
        """Sum of counter/gauge values whose names start with ``prefix``
        (a de-dup-suffix-tolerant aggregate, e.g. ``channel.memo_hits``)."""
        return sum(
            self._instruments[name].value
            for name in self.names(prefix)
            if not isinstance(self._instruments[name], Histogram)
        )

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- merging -------------------------------------------------------

    def merge(self, other: "MetricsRegistry",
              gauge_policy: str = "last") -> "MetricsRegistry":
        """Fold another registry into this one, matching by exact name.

        This is the fleet rollup: each shard returns its own registry
        and the driver merges them (in shard order, for deterministic
        histogram rings).  Semantics per kind:

        * counters sum;
        * gauges follow ``gauge_policy`` (``"last"``: merge order wins,
          ``"max"``: peak rollup) — see :meth:`Gauge.merge`;
        * histograms combine exact running stats and append retained
          samples (:meth:`Histogram.merge`);
        * a :class:`CallbackGauge` on the other side is sampled once
          into a plain gauge (a callback cannot cross a process
          boundary; its last reading can).

        Names are **not** re-de-duplicated: shard A's ``arq.sent#2``
        merges into shard B's ``arq.sent#2``, keeping per-instance
        streams aligned across shards.  Instruments missing on this
        side are created; a same-name/different-kind collision raises
        ``TypeError``.
        """
        for name in other.names():
            theirs = other._instruments[name]
            if isinstance(theirs, CallbackGauge):
                sampled = Gauge(name)
                sampled.set(theirs.value)
                theirs = sampled
            mine = self._instruments.get(name)
            if mine is None:
                if isinstance(theirs, Counter):
                    mine = Counter(name)
                elif isinstance(theirs, Gauge):
                    mine = Gauge(name)
                else:
                    mine = Histogram(name, theirs._capacity)
                self._instruments[name] = mine
            if isinstance(mine, CallbackGauge) or \
                    type(mine) is not type(theirs):
                raise TypeError(
                    f"cannot merge {type(theirs).__name__} into metric "
                    f"{name!r} ({type(mine).__name__})"
                )
            if isinstance(mine, Gauge):
                mine.merge(theirs, policy=gauge_policy)
            else:
                mine.merge(theirs)
        return self

    # -- output --------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        return {
            name: self._instruments[name].snapshot()
            for name in self.names()
        }

    def report(self) -> str:
        """A printable table of every instrument, histograms with the
        Fig 2b quantiles."""
        lines = ["== metrics"]
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                if instrument.count:
                    lines.append(
                        f"   {name:<40} n={instrument.count:<8} "
                        f"mean={instrument.mean:.4g} "
                        f"p50={instrument.p50:.4g} "
                        f"p90={instrument.p90:.4g} "
                        f"p99={instrument.p99:.4g} "
                        f"max={instrument.max:.4g}"
                    )
                else:
                    lines.append(f"   {name:<40} n=0")
            else:
                value = instrument.value
                shown = f"{value:.6g}" if isinstance(value, float) else value
                lines.append(f"   {name:<40} {shown}")
        return "\n".join(lines)

    def export(self, path: str | Path, extra: dict | None = None) -> Path:
        """Write the snapshot (plus optional extra payload) as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"timestamp": time.time(), "metrics": self.snapshot()}
        if extra:
            payload.update(extra)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=str) + "\n")
        return path
