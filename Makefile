# Music-Defined Networking reproduction — convenience targets.

PYTHON ?= python

.PHONY: install test bench bench-micro bench-fleet bench-workload bench-chaos obs examples figures render-all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Before/after timings of the vectorized listening hot path (Goertzel
# bank, batched spectrogram) and the vectorized acoustic render path
# (interval-indexed channel, 50/200-emitter sweeps).  Results are
# appended as JSON to .benchmarks/micro_perf.json (override with
# MICRO_BENCH_JSON=path); the channel render timings are additionally
# written to .benchmarks/BENCH_channel.json (override with
# BENCH_CHANNEL_JSON=path).
bench-micro:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest \
		benchmarks/test_micro_performance.py -m perf -q -s

# Fleet scaling curve (XEXT15): 1000 switches across 50 sharded rooms,
# serial reference vs process pool, shard sweep + identity checks.
# Writes .benchmarks/BENCH_fleet.json (override with
# BENCH_FLEET_JSON=path; SMOKE=1 runs the shrunken CI fleet).
bench-fleet:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro run \
		xext15 $(if $(SMOKE),--smoke)

# Workload benchmark (XEXT16): seeded traffic mixes swept into detector
# precision/recall, vectorized-driver scale points (up to 10^6 flows)
# and the >=10x speedup check against the per-flow reference.  Writes
# .benchmarks/BENCH_workload.json (override with
# BENCH_WORKLOAD_JSON=path; SMOKE=1 shrinks the mixes for CI).
bench-workload:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro run \
		xext16 $(if $(SMOKE),--smoke)

# Chaos sweep (XEXT17): process-level faults (crashes, hard pool
# breaks, stragglers, poison, duplicates) against the supervised
# fleet; verifies exact recovery (bit-identical to the fault-free
# serial reference) and reports recovery overhead per fault mix.
# Writes .benchmarks/BENCH_chaos.json (override with
# BENCH_CHAOS_JSON=path; SMOKE=1 shrinks the fleet and sleeps for CI).
bench-chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro run \
		xext17 $(if $(SMOKE),--smoke)

# Instrumented run of one experiment (default fig5ab) under repro.obs:
# prints the metric/trace report and exports .benchmarks/OBS_<fig>.json.
obs:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro obs \
		$(or $(FIG),fig5ab)

figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null && echo OK || exit 1; \
	done

render-all:
	@mkdir -p renders
	@for scene in knock chirps fan song; do \
		$(PYTHON) -m repro render $$scene renders/$$scene.wav; \
	done

clean:
	rm -rf renders .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
