# Music-Defined Networking reproduction — convenience targets.

PYTHON ?= python

.PHONY: install test bench examples figures render-all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null && echo OK || exit 1; \
	done

render-all:
	@mkdir -p renders
	@for scene in knock chirps fan song; do \
		$(PYTHON) -m repro render $$scene renders/$$scene.wav; \
	done

clean:
	rm -rf renders .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
