#!/usr/bin/env python3
"""Music-defined traffic engineering (paper Section 6, Figure 5).

Part 1 — load balancing: four switches in a rhombus; a source ramps its
rate up a single path; the ingress switch chirps its queue band every
300 ms; when the controller hears the congestion tone it installs a
Flow-MOD splitting traffic across both routes and the queue drains.

Part 2 — queue monitoring: one switch walks its queue through the
<25 / 25–75 / >75 packet bands, chirping 500/600/700 Hz; the controller
reconstructs the congestion state purely by ear.

Run:  python examples/load_balancing_demo.py
"""

from repro.experiments import (
    load_balancing_experiment,
    queue_monitor_experiment,
)
from repro.viz import sparkline, spectrogram_heatmap


def load_balancing() -> None:
    print("=" * 60)
    print("Load balancing on the rhombus (Figure 5a/5b)")
    print("=" * 60)
    result = load_balancing_experiment()
    series = result.queue_series
    print("\ns_in -> s_top queue occupancy (300 ms samples):")
    print("  " + sparkline(series.values))
    print(f"  peak before split: {result.peak_queue_before_split:.0f} pkts "
          f"(threshold 75)")
    print(f"  congestion tone -> Flow-MOD split at t = "
          f"{result.split_time:.2f} s (paper: 3.7 s)")
    print(f"  final queue: {result.final_queue:.0f} pkts")
    print(f"  packets carried by the second path: "
          f"{result.bottom_path_packets:.0f}")
    assert result.rebalanced and result.final_queue < 25


def queue_monitoring() -> None:
    print()
    print("=" * 60)
    print("Queue-size monitoring by ear (Figure 5c/5d)")
    print("=" * 60)
    result = queue_monitor_experiment()
    print("\ntrue queue occupancy:")
    print("  " + sparkline(result.queue_series.values))
    print(f"  peak: {result.peak_queue:.0f} pkts")
    print("\nwhat the controller heard (band transitions):")
    tone = {"low": "500 Hz", "medium": "600 Hz", "high": "700 Hz"}
    for time, band in result.band_history:
        print(f"  t={time:4.1f}s  {tone[band]:>7}  -> queue is {band}")
    assert result.bands_heard() == ["low", "medium", "high", "medium", "low"]
    print("\nmel spectrogram of the chirps (Figure 5d):")
    print(spectrogram_heatmap(*result.spectrogram, height=10, width=56))
    print("\nheard sequence matches the paper's low->high->low story.")


def main() -> None:
    load_balancing()
    queue_monitoring()


if __name__ == "__main__":
    main()
