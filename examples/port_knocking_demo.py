#!/usr/bin/env python3
"""Sound-based port knocking (paper Section 4, Figure 3).

A switch starts fully closed.  A client hammers the protected port —
nothing gets through.  Then it sends the secret three-packet knock;
each knock packet is dropped by the flow table but makes the switch
play a tone; the MDN controller's state machine hears the three tones
in order and installs the flow entry that opens the port.

Run:  python examples/port_knocking_demo.py
"""

from repro.experiments import port_knocking_experiment


def main() -> None:
    print("Running the Figure 3 experiment (34 simulated seconds)...")
    result = port_knocking_experiment(
        duration=34.0, knock_start=12.0, knock_spacing=1.5,
        sender_rate_pps=40.0,
    )

    print("\nbytes sent vs received (Figure 3a):")
    print(f"  {'t (s)':>6}  {'sent kB':>8}  {'recvd kB':>9}")
    for time, sent in zip(result.sent_bytes.times[::4],
                          result.sent_bytes.values[::4]):
        received = result.received_bytes.value_at(time)
        marker = "  <- port opened" if (
            result.opened_at is not None
            and abs(time - result.opened_at) < 1.0
        ) else ""
        print(f"  {time:>6.1f}  {sent / 1000:>8.0f}  "
              f"{received / 1000:>9.0f}{marker}")

    print(f"\nknocks heard: {result.knock_ports_heard} "
          f"at t = {[f'{t:.1f}' for t in result.knock_times]}")
    print(f"port opened at t = {result.opened_at:.1f} s")

    print("\ncontrol run: same knocks in the WRONG order...")
    control = port_knocking_experiment(correct_order=False)
    print(f"  opened: {control.opened}  "
          f"(received {control.received_bytes.final():.0f} bytes)")
    assert result.opened and not control.opened


if __name__ == "__main__":
    main()
