#!/usr/bin/env python3
"""Music-Defined Telemetry (paper Section 5, Figure 4).

Two detectors built from the same primitive — per-interval tone counts:

1. **Heavy hitter**: every forwarded packet's 5-tuple hashes to a
   frequency bucket; a bucket ringing in more windows than the
   threshold per interval is an elephant flow.
2. **Port scan**: destination ports map linearly onto frequencies, so a
   scan sweeps the band upward; many *distinct* tones per interval
   raise the alarm.

Both runs are repeated with a pop-song interferer (the paper used Sia's
*Cheap Thrills*; we generate an equivalent melody).

Run:  python examples/telemetry_demo.py
"""

from repro.experiments import heavy_hitter_experiment, port_scan_experiment


def heavy_hitters() -> None:
    print("=" * 60)
    print("Heavy-hitter detection (Figure 4a/4b)")
    print("=" * 60)
    for with_song in (False, True):
        condition = "with pop song" if with_song else "quiet room"
        result = heavy_hitter_experiment(with_song=with_song)
        counts = result.per_interval_heavy_counts
        print(f"\n[{condition}]")
        print(f"  heavy flow: {result.heavy_flow}")
        print(f"  its bucket tone: {result.heavy_frequency:.0f} Hz")
        print("  windows-heard per 1 s interval:",
              [int(v) for v in counts.values])
        print(f"  detected: {result.heavy_detected}   "
              f"false positives: {len(result.false_positive_frequencies)}")
        assert result.heavy_detected


def port_scans() -> None:
    print()
    print("=" * 60)
    print("Port-scan detection (Figure 4c/4d)")
    print("=" * 60)
    for with_song in (False, True):
        condition = "with pop song" if with_song else "quiet room"
        result = port_scan_experiment(with_song=with_song)
        track = result.dominant_track_hz
        print(f"\n[{condition}]")
        print(f"  scan detected: {result.scan_detected}")
        if result.alerts:
            print(f"  distinct ports in alerting interval: "
                  f"{result.alerts[0].distinct_ports}")
        print(f"  ports heard (the sweep): {result.ports_heard}")
        if len(track):
            print(f"  dominant spectrogram track: "
                  f"{track[0]:.0f} Hz -> {track[-1]:.0f} Hz "
                  "(the paper's rising 'logarithmic line')")
        assert result.scan_detected


def main() -> None:
    heavy_hitters()
    port_scans()
    print("\nall telemetry checks passed.")


if __name__ == "__main__":
    main()
