#!/usr/bin/env python3
"""DDoS and superspreader detection by chords (the paper's §5 open
problem, solved).

"By mapping destination addresses to frequencies, we can presumably
detect k-superspreaders and hence a DDoS.  We leave that as an open
problem." — so here it is.  The switch plays a two-note **chord** per
observed (src, dst) address pair; the controller correlates co-heard
tones.  A source tone co-occurring with many distinct destination tones
in one interval is a superspreader; a destination tone co-occurring
with many distinct source tones is a DDoS victim.

This demo also shows the §8 multi-hop extension: the same tones carried
across the room by a frequency-translating relay chain, and a small
alert payload sent over the FSK modem.

Run:  python examples/ddos_detection_demo.py
"""

from repro.experiments import (
    modem_experiment,
    relay_experiment,
    superspreader_experiment,
)


def attacks() -> None:
    print("=" * 64)
    print("Chord telemetry: attack detection (§5 open problem)")
    print("=" * 64)
    for mode, description in (
        ("superspreader", "one host fanning out to 15 destinations"),
        ("ddos", "15 spoofed sources hammering one victim"),
    ):
        result = superspreader_experiment(mode=mode)
        print(f"\n[{mode}] {description}")
        print(f"  attack detected: {result.attack_detected}")
        print(f"  responsible bucket flagged: {result.attacker_flagged}")
        if result.detection_interval is not None:
            print(f"  first alert in interval starting "
                  f"t = {result.detection_interval:.0f} s")
        assert result.attack_detected


def relays() -> None:
    print()
    print("=" * 64)
    print("Multi-hop sound relay (§8 open question)")
    print("=" * 64)
    result = relay_experiment(num_relays=2)
    print(f"\n  source -> listener distance: "
          f"{result.source_to_listener_m:.0f} m ({result.num_hops} hops)")
    print(f"  direct single-hop tone heard:  {result.direct_heard} "
          "(too far — this is the problem)")
    print(f"  relayed tone heard:            {result.relayed_heard}")
    print(f"  end-to-end latency:            "
          f"{result.end_to_end_latency:.2f} s")
    assert result.relayed_heard and not result.direct_heard


def modem() -> None:
    print()
    print("=" * 64)
    print("Acoustic alert payload over the FSK modem (§2 context)")
    print("=" * 64)
    result = modem_experiment(b"DDoS on 10.0.0.2 - rate-limit installed")
    print(f"\n  payload: {result.payload_bytes} bytes")
    print(f"  airtime: {result.airtime_s:.2f} s "
          f"({result.effective_bits_per_second:.1f} bit/s — the paper "
          "cites ~20 B / 6 s for acoustic links)")
    print(f"  decoded clean / under song noise: "
          f"{result.decoded_ok} / {result.decoded_ok_with_song}")
    assert result.decoded_ok


def main() -> None:
    attacks()
    relays()
    modem()
    print("\nall extension demos passed.")


if __name__ == "__main__":
    main()
