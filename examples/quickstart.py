#!/usr/bin/env python3
"""Quickstart: the Music-Defined Networking loop in ~60 lines.

A switch wants to tell the controller something.  Instead of a control
packet, it sends a Music Protocol message to its speaker agent; the
tone crosses the room; the controller's microphone picks it up, an FFT
identifies the frequency, and the subscribed callback fires.

Run:  python examples/quickstart.py
"""

from repro import (
    AcousticChannel,
    FrequencyPlan,
    MDNController,
    Microphone,
    MusicAgent,
    MusicProtocolMessage,
    Position,
    Simulator,
    Speaker,
)


def main() -> None:
    # One clock for the network and the air.
    sim = Simulator()
    channel = AcousticChannel()

    # Give the switch a frequency block from the shared plan
    # (20 Hz guard spacing, per the paper's Section 3).
    plan = FrequencyPlan()
    allocation = plan.allocate("switch-1", count=3)
    print(f"switch-1 owns frequencies: {allocation.frequencies} Hz")

    # The Raspberry-Pi-equivalent: speaker 60 cm from the microphone.
    agent = MusicAgent(sim, channel, Speaker(Position(0.6, 0.0, 0.0)),
                       name="switch-1")

    # The listening application.
    controller = MDNController(sim, channel, Microphone(Position()),
                               listen_interval=0.1)
    heard = []

    def on_tone(event) -> None:
        heard.append(event)
        print(f"  t={event.time:.1f}s  heard {event.frequency:.0f} Hz "
              f"at {event.level_db:.1f} dB "
              f"(measured {event.measured_frequency:.1f} Hz)")

    controller.watch(list(allocation.frequencies), on_onset=on_tone)
    controller.start()

    # The switch "says" three things: one MP message per event.
    for index, delay in enumerate((0.5, 1.2, 2.0)):
        message = MusicProtocolMessage(
            frequency=allocation.frequency_for(index),
            duration=0.15,
            intensity_db=70.0,
        )
        print(f"scheduling MP message at t={delay}s: "
              f"{message.frequency:.0f} Hz for {message.duration * 1000:.0f} ms "
              f"({len(message.marshal())} bytes on the wire)")
        sim.schedule_at(delay, agent.handle_message, message)

    sim.run(3.0)

    assert len(heard) == 3, "all three tones should be heard"
    print(f"\ndone: {len(heard)}/3 tones heard and attributed.")


if __name__ == "__main__":
    main()
