#!/usr/bin/env python3
"""Server fan failure detection (paper Section 7, Figures 6–7).

A microphone sits 30 cm from a server in a loud datacenter aisle (and,
for contrast, 50 cm from the same server in a quiet office).  A
watchdog learns the healthy FFT amplitude profile, then scores every
new sample's amplitude difference against it.  When the fan bank loses
power mid-run, the blade-pass harmonics vanish and the score jumps
across the threshold — the out-of-band failure alert fires seconds
later, with no packet ever sent.

Run:  python examples/fan_failure_demo.py
"""

from repro.experiments import fan_failure_experiment, fan_spectrogram_panel


def spectrogram_summary() -> None:
    print("=" * 64)
    print("Figure 6: is the fan audible over the room? (blade-pass line)")
    print("=" * 64)
    print(f"  {'room':>10}  {'fan':>4}  {'line dB':>8}  {'floor dB':>9}  "
          f"{'prominence':>10}")
    for room in ("datacenter", "office"):
        for fan_on in (True, False):
            panel = fan_spectrogram_panel(room, fan_on)
            print(f"  {room:>10}  {'ON' if fan_on else 'OFF':>4}  "
                  f"{panel.blade_line_level_db:>8.1f}  "
                  f"{panel.noise_floor_db:>9.1f}  "
                  f"{panel.line_prominence_db:>9.1f} dB")


def failure_detection() -> None:
    print()
    print("=" * 64)
    print("Figure 7: amplitude-difference failure detection")
    print("=" * 64)
    for room in ("datacenter", "office"):
        result = fan_failure_experiment(room=room)
        print(f"\n[{room}]  fan bank loses power at "
              f"t = {result.failure_time:.0f} s")
        print(f"  {'t (s)':>6}  {'score':>8}")
        for time, score in zip(result.scores.times, result.scores.values):
            flag = ""
            if result.detection_time and abs(time - result.detection_time) < 0.01:
                flag = "  <- ALERT (threshold "
                flag += f"{result.threshold:.1f})"
            print(f"  {time:>6.1f}  {score:>8.1f}{flag}")
        print(f"  on-on max {result.on_on_max_score:.1f}  vs  "
              f"on-off min {result.on_off_min_score:.1f}  "
              f"(separation {result.separation_ratio:.1f}x)")
        assert result.detected


def find_the_beeper() -> None:
    """The §7 footnote, closed out: 'we heard a misconfigured server
    beeping for weeks' — the microphone array walks straight to it."""
    from repro.audio import AcousticChannel, Microphone, Position, Speaker, ToneSpec
    from repro.core import TdoaLocalizer
    from repro.fans import Server

    print()
    print("=" * 64)
    print("Bonus: which rack is beeping? (TDOA localization)")
    print("=" * 64)
    channel = AcousticChannel()
    neighbour = Server("healthy-but-loud")
    neighbour.position = Position(2.0, 8.0, 0.0)
    neighbour.attach_to_channel(channel, 3.0)
    culprit = Position(9.0, 2.0, 0.0)
    Speaker(culprit).play(channel, 1.0, ToneSpec(4000, 0.4, 75.0))

    stations = {
        "nw": Microphone(Position(0.0, 10.0, 0.0), seed=2),
        "ne": Microphone(Position(12.0, 10.0, 0.0), seed=3),
        "s": Microphone(Position(6.0, -2.0, 0.0), seed=4),
        "w": Microphone(Position(-2.0, 0.0, 0.0), seed=5),
    }
    result = TdoaLocalizer(stations).locate(channel, 1.0, 1.5,
                                            band=(3700.0, 4300.0))
    print(f"\n  a 4 kHz beep rang out somewhere in the 12 x 12 m room...")
    print(f"  true rack:  ({culprit.x:.0f}, {culprit.y:.0f})")
    print(f"  estimated:  ({result.position.x:.1f}, {result.position.y:.1f})"
          f"  (error {result.position.distance_to(culprit):.2f} m)")
    if result.excluded:
        print(f"  stations gated out (drowned by a loud neighbour): "
              f"{', '.join(result.excluded)}")
    assert result.position.distance_to(culprit) < 1.5


def main() -> None:
    spectrogram_summary()
    failure_detection()
    find_the_beeper()
    print("\nfailures detected in both rooms, no false alarms, "
          "and the beeper was found.")


if __name__ == "__main__":
    main()
