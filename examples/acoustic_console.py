#!/usr/bin/env python3
"""An acoustic management console: messages, meters and melodies.

The capstone demo — three systems on one shared air:

1. **Figure 1, faithfully**: a switch's event becomes a 12-byte Music
   Protocol packet over its Pi's Ethernet link before any sound exists.
2. **In-network rate control** (§6 closed-loop): the console hears the
   congestion chirp and pushes a metered Flow-MOD; the queue drains
   without any source cooperation.
3. **Acoustic messaging**: the switch then *tells* the console what
   happened in words, over the FSK modem, and the console prints it.

Run:  python examples/acoustic_console.py
"""

from repro.audio import (
    FskTransmitter,
    Position,
    Speaker,
    default_modem_config,
)
from repro.core.agent import MusicAgent
from repro.core.apps import (
    BandToneMap,
    QueueChirper,
    RateControlApp,
    RateControlPolicy,
)
from repro.core.messaging import AcousticMessageService
from repro.core.pi import PiBridge
from repro.experiments.rigs import build_testbed
from repro.net import ConstantRateSource, Match
from repro.viz import sparkline


def main() -> None:
    testbed = build_testbed("single")
    sim, topo = testbed.sim, testbed.topo
    switch = topo.switches["s1"]
    port = topo.port_towards("s1", "h2")

    # --- 1. The faithful sound path: switch -> MP packet -> Pi -> air.
    chirp_agent = MusicAgent(sim, testbed.channel,
                             Speaker(Position(0.6, 0.0, 0.0)), "s1-pi")
    bridge = PiBridge(sim, switch, chirp_agent)
    tones = BandToneMap.from_frequencies(
        testbed.plan.allocate("s1/bands", 3).frequencies
    )
    chirper = QueueChirper(sim, switch, port, bridge, tones)

    # --- 3. The switch reports in prose over the modem (declared
    # before the app so the install callback can use it).
    modem_config = default_modem_config(testbed.plan.allocate("s1/modem", 9))
    modem_speaker = Speaker(Position(0.0, -0.9, 0.0))
    transmitter = FskTransmitter(modem_config, modem_speaker)
    console_log = []
    service = AcousticMessageService(
        sim, testbed.channel, testbed.controller.microphone, modem_config,
        on_message=lambda payload, time: console_log.append((time, payload)),
    )
    service.start()

    announced = []

    def announce_meter(time: float) -> None:
        # One short report: a long frame is ~0.3 s of air per byte, and
        # overlapping frames on one block collide (see the full-duplex
        # tests) — frame discipline matters on a shared medium.
        if announced:
            return
        announced.append(time)
        message = f"meter@{time:.1f}s 150pps".encode()
        transmitter.send(testbed.channel, sim.now + 0.3, message)

    # --- 2. The console reacts to congestion with a meter.
    app = RateControlApp(
        testbed.controller, tones,
        RateControlPolicy("s1", Match(dst_ip="10.0.0.2"), port,
                          limit_pps=150.0),
        on_install=announce_meter,
    )
    testbed.controller.start()

    # Overload: 450 pkt/s into a 250 pkt/s egress.
    source = ConstantRateSource(topo.hosts["h1"], "10.0.0.2", 80,
                                rate_pps=450, stop=5.0)
    source.launch()
    sim.run(20.0)

    print("queue occupancy (300 ms samples):")
    print("  " + sparkline(chirper.queue_series.values))
    print(f"\nMP packets switch->Pi: {bridge.mp_sent.total:.0f} "
          f"(played: {bridge.pi.mp_played.total:.0f})")
    print(f"meter installed at: "
          f"{', '.join(f'{t:.1f}s' for t in app.installed_at)}")
    print(f"packets policed in-network: {switch.packets_policed.total:.0f}")
    print("\nconsole messages received over the air:")
    for time, payload in console_log:
        print(f"  [{time:6.2f}s] {payload.decode()}")

    assert app.installed_at, "congestion should have triggered the meter"
    assert console_log, "the acoustic message should have arrived"
    print("\nacoustic console demo passed.")


if __name__ == "__main__":
    main()
