"""FIG2A — FFT of audio from 5 switches (Figure 2a).

Paper: five switches with disjoint frequency sets play simultaneously;
the FFT shows one identifiable peak per switch.  Shape to hold: all
five switches attributed, at 20 Hz guard spacing, with and without
noise.
"""

from conftest import report

from repro.experiments import multiswitch_fft


def test_fig2a_five_switches_identified(run_once):
    result = run_once(multiswitch_fft, num_switches=5)
    rows = [("switch", "played Hz", "measured Hz", "level dB")]
    for name in sorted(result.played):
        rows.append((
            name,
            f"{result.played[name]:.0f}",
            f"{result.detected.get(name, float('nan')):.1f}",
            f"{result.levels_db.get(name, float('nan')):.1f}",
        ))
    report("Fig 2a: simultaneous switch identification", rows)
    assert result.all_identified
    for name, played in result.played.items():
        assert abs(result.detected[name] - played) < 5.0


def test_fig2a_with_background_noise(run_once):
    """§3: 'We tested our applications with and without background
    noise.  In both cases, we could accurately distinguish the sounds
    from switches.'"""
    result = run_once(multiswitch_fft, num_switches=5, noise_level_db=55.0)
    report("Fig 2a (noisy): identification", [
        ("identified", sorted(result.detected)),
    ])
    assert result.all_identified


def test_fig2a_seven_switch_testbed(run_once):
    """The paper's physical testbed had 7 Zodiac FX switches (§3)."""
    result = run_once(multiswitch_fft, num_switches=7)
    assert result.all_identified
