"""XEXT — the paper's open problems, implemented and measured.

* XEXT1: multi-hop sound relay (§8 open question).
* XEXT2: DDoS / k-superspreader detection via chords (§5 open problem).
* XEXT3: ultrasound band extension (§8 research direction).
* XEXT4: acoustic data modem (§2's data-plane context).
"""

from conftest import report

from repro.experiments import (
    modem_experiment,
    relay_experiment,
    superspreader_experiment,
    ultrasound_experiment,
)


class TestXext1Relay:
    def test_two_relay_chain(self, run_once):
        result = run_once(relay_experiment, num_relays=2)
        report("XEXT1: 3-hop tone relay over 90 m", [
            ("direct single-hop heard", result.direct_heard),
            ("relayed tone heard", result.relayed_heard),
            ("end-to-end latency", f"{result.end_to_end_latency:.2f} s"),
            ("per-relay forward counts", result.per_relay_counts),
        ])
        assert not result.direct_heard  # single hop genuinely fails here
        assert result.relayed_heard
        # Each hop adds at most one listen window + tone duration.
        assert result.end_to_end_latency < 1.0

    def test_latency_scales_with_hops(self, run_once):
        results = run_once(lambda: [relay_experiment(num_relays=n)
                                    for n in (1, 2, 3)])
        rows = [("relays", "distance (m)", "latency (s)")]
        for result in results:
            rows.append((result.num_hops - 1, result.source_to_listener_m,
                         f"{result.end_to_end_latency:.2f}"))
        report("XEXT1: latency vs chain length", rows)
        latencies = [result.end_to_end_latency for result in results]
        assert all(result.relayed_heard for result in results)
        assert latencies == sorted(latencies)


class TestXext2Superspreader:
    def test_superspreader_detected(self, run_once):
        result = run_once(superspreader_experiment, mode="superspreader")
        report("XEXT2: k-superspreader detection (k=5, 15 destinations)", [
            ("detected", result.attack_detected),
            ("attacker flagged", result.attacker_flagged),
            ("first alert interval", result.detection_interval),
        ])
        assert result.attack_detected
        assert result.attacker_flagged
        assert result.detection_interval <= 2.0

    def test_ddos_victim_detected(self, run_once):
        result = run_once(superspreader_experiment, mode="ddos")
        report("XEXT2: DDoS victim detection (k=5, 15 spoofed sources)", [
            ("detected", result.attack_detected),
            ("victim flagged", result.attacker_flagged),
        ])
        assert result.attack_detected
        assert result.attacker_flagged


class TestXext3Ultrasound:
    def test_capacity_doubles(self, run_once):
        result = run_once(ultrasound_experiment)
        report("XEXT3: ultrasound band extension", [
            ("audible capacity (20 Hz-20 kHz)", result.audible_capacity),
            ("extended capacity (to 40 kHz)", result.extended_capacity),
            ("25 kHz tone detected", result.ultrasound_tone_detected),
        ])
        assert result.extended_capacity == 2 * result.audible_capacity
        assert result.ultrasound_tone_detected


class TestXext4Modem:
    def test_management_alert_over_sound(self, run_once):
        result = run_once(modem_experiment)
        report("XEXT4: FSK data modem (paper context: ~20 B / 6 s / hop)", [
            ("payload", f"{result.payload_bytes} bytes"),
            ("airtime", f"{result.airtime_s:.2f} s"),
            ("effective rate", f"{result.effective_bits_per_second:.1f} bit/s"),
            ("decoded (clean)", result.decoded_ok),
            ("decoded (song noise)", result.decoded_ok_with_song),
        ])
        assert result.decoded_ok
        assert result.decoded_ok_with_song
        # Same order of magnitude as the cited literature.
        assert 5.0 < result.effective_bits_per_second < 100.0
