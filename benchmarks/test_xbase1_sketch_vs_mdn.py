"""XBASE1 — count-min sketch vs MDN tone counting (§5 comparator).

The paper positions Music-Defined Telemetry against "sampling or
sketching techniques".  Shape to hold: both detectors agree on the
heavy flow over the same workload, and neither flags mice.
"""

from conftest import report

from repro.experiments import sketch_vs_mdn


def test_xbase1_agreement(run_once):
    result = run_once(sketch_vs_mdn)
    report("XBASE1: sketch vs MDN heavy-hitter agreement", [
        ("heavy flow", str(result.heavy_flow)),
        ("MDN detected", result.mdn_detected),
        ("sketch detected", result.sketch_detected),
        ("MDN false positives", result.mdn_false_positive_buckets),
        ("sketch false positives", result.sketch_false_positive_flows),
    ])
    assert result.agree_on_heavy
    assert result.mdn_false_positive_buckets == 0
    assert result.sketch_false_positive_flows == 0


def test_xbase1_agreement_across_seeds(run_once):
    """Same conclusion across several workload seeds."""
    def sweep():
        return [sketch_vs_mdn(seed=seed) for seed in (3, 11, 29)]

    results = run_once(sweep)
    rows = [("seed run", "MDN", "sketch")]
    for index, result in enumerate(results):
        rows.append((index, result.mdn_detected, result.sketch_detected))
    report("XBASE1: agreement across seeds", rows)
    assert all(result.agree_on_heavy for result in results)
