"""XBASE2 — acoustic congestion notification vs ECN (§6 comparator).

Paper: sound-driven congestion control works "without using the less
efficient Explicit Congestion Notification (ECN) mechanism of TCP".
Shape to hold: for the same queue-threshold crossing, the MDN
controller hears the congestion tone no later than the traffic source
receives its first ECN echo — and the acoustic path does not ride the
congested queue.
"""

from conftest import report

from repro.experiments import ecn_vs_mdn


def test_xbase2_notification_race(run_once):
    result = run_once(ecn_vs_mdn)
    report("XBASE2: congestion notification latency", [
        ("queue crossed 75 pkts at", f"{result.congestion_onset:.3f} s"),
        ("MDN tone heard at", f"{result.mdn_heard_at:.3f} s"),
        ("ECN echo at source at", f"{result.ecn_echo_at:.3f} s"),
        ("MDN latency", f"{result.mdn_latency * 1000:.0f} ms"),
        ("ECN latency", f"{result.ecn_latency * 1000:.0f} ms"),
    ])
    assert result.mdn_latency is not None
    assert result.ecn_latency is not None
    # The chirp period bounds the acoustic latency (300 ms + window).
    assert result.mdn_latency < 0.45
    # The tone wins the race on this congested path.
    assert result.mdn_latency <= result.ecn_latency


def test_xbase2_ecn_latency_grows_with_congestion(run_once):
    """ECN's weakness: its signal queues behind the very congestion it
    reports.  Higher offered load -> deeper queue -> slower echo, while
    the chirp latency stays bounded by the 300 ms period."""
    def sweep():
        return {rate: ecn_vs_mdn(source_rate_pps=rate)
                for rate in (350.0, 550.0)}

    results = run_once(sweep)
    rows = [("rate (pps)", "MDN (ms)", "ECN (ms)")]
    for rate, result in results.items():
        rows.append((
            int(rate),
            f"{result.mdn_latency * 1000:.0f}",
            f"{result.ecn_latency * 1000:.0f}",
        ))
    report("XBASE2: latency vs offered load", rows)
    for result in results.values():
        assert result.mdn_latency < 0.45
