"""Microbenchmarks of the hot primitives (true pytest-benchmark runs).

These are performance-regression guards for the code the experiments
hammer: channel rendering, detection, mel analysis, the event loop,
flow-table lookup and sketch updates.  Unlike the figure benches (one
round each), these run many rounds for stable statistics.
"""

import numpy as np
import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    Microphone,
    Position,
    SpectrumAnalyzer,
    ToneSpec,
    mel_spectrogram,
    sine_tone,
    white_noise,
)
from repro.baselines import CountMinSketch
from repro.core import FrequencyPlan
from repro.net import (
    Action,
    FlowKey,
    FlowTable,
    Match,
    Packet,
    Protocol,
    Simulator,
)


@pytest.fixture(scope="module")
def busy_channel():
    """Ten concurrent tones plus a noise bed: a loud testbed moment."""
    channel = AcousticChannel()
    for index in range(10):
        channel.play_tone(
            0.0, ToneSpec(500.0 + 40.0 * index, 0.5, 68.0),
            Position(0.5 + 0.1 * index, 0.0, 0.0),
        )
    channel.add_noise(
        white_noise(1.0, 50.0, rng=np.random.default_rng(1)), Position()
    )
    return channel


def test_perf_channel_render(benchmark, busy_channel):
    """Render one 100 ms capture of a 10-tone + noise mixture."""
    microphone = Microphone(Position(), seed=1)
    window = benchmark(microphone.record, busy_channel, 0.1, 0.2)
    assert len(window) == 1600


def test_perf_detector_fft(benchmark, busy_channel):
    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
    watched = list(plan.allocate("all", 10).frequencies)
    detector = FrequencyDetector(watched)
    window = Microphone(Position(), seed=1).record(busy_channel, 0.1, 0.2)
    events = benchmark(detector.detect, window)
    assert len(events) == 10


def test_perf_detector_goertzel(benchmark, busy_channel):
    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
    watched = list(plan.allocate("all", 10).frequencies)
    detector = FrequencyDetector(watched, backend="goertzel")
    window = Microphone(Position(), seed=1).record(busy_channel, 0.1, 0.2)
    events = benchmark(detector.detect, window)
    assert len(events) >= 8


def test_perf_mel_spectrogram(benchmark):
    """One second of audio into a 64-band mel spectrogram."""
    signal = sine_tone(1000.0, 1.0, 65.0)
    times, centers, mags = benchmark(mel_spectrogram, signal)
    assert mags.shape[0] == 20


def test_perf_spectrum_analyze(benchmark):
    analyzer = SpectrumAnalyzer()
    window = sine_tone(1000.0, 0.05, 65.0)
    spectrum = benchmark(analyzer.analyze, window)
    assert spectrum.level_at(1000.0) > 55.0


def test_perf_simulator_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""
    def run() -> int:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.0001, tick)

        sim.schedule(0.0, tick)
        sim.run(10.0)
        return count[0]

    executed = benchmark(run)
    assert executed == 10_000


def test_perf_flow_table_lookup(benchmark):
    """Lookup against a 100-entry table (worst case: match at the end)."""
    table = FlowTable()
    for index in range(99):
        table.install(Match(dst_port=20_000 + index), Action.drop(),
                      priority=50)
    table.install(Match(), Action.forward(1), priority=0)
    packet = Packet(FlowKey("10.0.0.1", "10.0.0.2", 1, 80, Protocol.TCP))
    entry = benchmark(table.lookup, packet, 1)
    assert entry.action.out_ports == (1,)


def test_perf_countmin_update(benchmark):
    sketch = CountMinSketch(width=64, depth=4)
    flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
    benchmark(sketch.update, flow)
    assert sketch.estimate(flow) >= 1
