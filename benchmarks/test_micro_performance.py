"""Microbenchmarks of the hot primitives (true pytest-benchmark runs).

These are performance-regression guards for the code the experiments
hammer: channel rendering, detection, mel analysis, the event loop,
flow-table lookup and sketch updates.  Unlike the figure benches (one
round each), these run many rounds for stable statistics.

The ``@pytest.mark.perf`` tests at the bottom are before/after
comparisons of the vectorized listening hot path against its scalar
references.  They need no pytest-benchmark fixture, run via
``make bench-micro``, and append their timings as JSON (default
``.benchmarks/micro_perf.json``, override with ``MICRO_BENCH_JSON``)
so the bench trajectory can be tracked across commits.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.audio import (
    AcousticChannel,
    FrequencyDetector,
    GoertzelBank,
    Microphone,
    Position,
    SpectrumAnalyzer,
    ToneSpec,
    goertzel_magnitude,
    mel_spectrogram,
    power_spectrogram,
    power_spectrogram_reference,
    sine_tone,
    white_noise,
)
from repro.baselines import CountMinSketch
from repro.core import FrequencyPlan
from repro.net import (
    Action,
    FlowKey,
    FlowTable,
    Match,
    Packet,
    Protocol,
    Simulator,
)


@pytest.fixture(scope="module")
def busy_channel():
    """Ten concurrent tones plus a noise bed: a loud testbed moment."""
    channel = AcousticChannel()
    for index in range(10):
        channel.play_tone(
            0.0, ToneSpec(500.0 + 40.0 * index, 0.5, 68.0),
            Position(0.5 + 0.1 * index, 0.0, 0.0),
        )
    channel.add_noise(
        white_noise(1.0, 50.0, rng=np.random.default_rng(1)), Position()
    )
    return channel


def test_perf_channel_render(benchmark, busy_channel):
    """Render one 100 ms capture of a 10-tone + noise mixture."""
    microphone = Microphone(Position(), seed=1)
    window = benchmark(microphone.record, busy_channel, 0.1, 0.2)
    assert len(window) == 1600


def test_perf_detector_fft(benchmark, busy_channel):
    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
    watched = list(plan.allocate("all", 10).frequencies)
    detector = FrequencyDetector(watched)
    window = Microphone(Position(), seed=1).record(busy_channel, 0.1, 0.2)
    events = benchmark(detector.detect, window)
    assert len(events) == 10


def test_perf_detector_goertzel(benchmark, busy_channel):
    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
    watched = list(plan.allocate("all", 10).frequencies)
    detector = FrequencyDetector(watched, backend="goertzel")
    window = Microphone(Position(), seed=1).record(busy_channel, 0.1, 0.2)
    events = benchmark(detector.detect, window)
    assert len(events) >= 8


def test_perf_mel_spectrogram(benchmark):
    """One second of audio into a 64-band mel spectrogram."""
    signal = sine_tone(1000.0, 1.0, 65.0)
    times, centers, mags = benchmark(mel_spectrogram, signal)
    assert mags.shape[0] == 20


def test_perf_spectrum_analyze(benchmark):
    analyzer = SpectrumAnalyzer()
    window = sine_tone(1000.0, 0.05, 65.0)
    spectrum = benchmark(analyzer.analyze, window)
    assert spectrum.level_at(1000.0) > 55.0


def test_perf_simulator_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""
    def run() -> int:
        sim = Simulator()
        count = [0]

        def tick() -> None:
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.0001, tick)

        sim.schedule(0.0, tick)
        sim.run(10.0)
        return count[0]

    executed = benchmark(run)
    assert executed == 10_000


def test_perf_flow_table_lookup(benchmark):
    """Lookup against a 100-entry table (worst case: match at the end)."""
    table = FlowTable()
    for index in range(99):
        table.install(Match(dst_port=20_000 + index), Action.drop(),
                      priority=50)
    table.install(Match(), Action.forward(1), priority=0)
    packet = Packet(FlowKey("10.0.0.1", "10.0.0.2", 1, 80, Protocol.TCP))
    entry = benchmark(table.lookup, packet, 1)
    assert entry.action.out_ports == (1,)


def test_perf_countmin_update(benchmark):
    sketch = CountMinSketch(width=64, depth=4)
    flow = FlowKey("10.0.0.1", "10.0.0.2", 1234, 80)
    benchmark(sketch.update, flow)
    assert sketch.estimate(flow) >= 1


# ----------------------------------------------------------------------
# Vectorization before/after comparisons (`make bench-micro`)
# ----------------------------------------------------------------------


def _best_of(func, repeats: int = 30) -> float:
    """Best wall-clock seconds over ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_json(path: Path, name: str, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.loads(path.read_text()) if path.exists() else {}
    data[name] = {**payload, "timestamp": time.time()}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _record_perf(name: str, payload: dict) -> None:
    """Merge one benchmark record into the JSON trajectory file."""
    _merge_json(Path(os.environ.get("MICRO_BENCH_JSON",
                                    ".benchmarks/micro_perf.json")),
                name, payload)


def _record_channel_bench(name: str, payload: dict) -> None:
    """Channel-render before/after timings get their own trajectory
    file so the synthesis-side perf history is easy to diff across
    PRs (default ``.benchmarks/BENCH_channel.json``)."""
    _merge_json(Path(os.environ.get("BENCH_CHANNEL_JSON",
                                    ".benchmarks/BENCH_channel.json")),
                name, payload)
    _record_perf(name, payload)


def _chirping_channel(num_devices: int, timeline: float = 600.0,
                      chirp_every: float = 20.0) -> AcousticChannel:
    """An XEXT9-style long-running deployment: ``num_devices``
    positioned emitters, each chirping a 300 ms plan heartbeat every
    ``chirp_every`` seconds at a staggered offset, accumulating
    history over ``timeline`` seconds (no pruning — the deep-look-back
    configuration)."""
    channel = AcousticChannel()
    for index in range(num_devices):
        spec = ToneSpec(400.0 + 20.0 * index, 0.3, 68.0)
        position = Position(0.5 + 0.01 * index, 0.0, 0.0)
        start = (index * 0.37) % (chirp_every - 1.0)
        while start < timeline:
            channel.play_tone(start, spec, position)
            start += chirp_every
    return channel


def _render_sweep(channel: AcousticChannel, render, first_tick: int,
                  num_windows: int, window: float = 0.1) -> None:
    """Render ``num_windows`` consecutive controller poll windows."""
    listener = Position()
    for tick in range(first_tick, first_tick + num_windows):
        render(listener, tick * window, (tick + 1) * window)


@pytest.mark.perf
@pytest.mark.parametrize(("num_devices", "min_speedup"),
                         [(50, 3.0), (200, 5.0)])
def test_perf_channel_render_vectorized_speedup(num_devices, min_speedup):
    """The interval-indexed render must beat the scalar full-history
    scan across a 600-window controller poll near the end of an
    XEXT9-style long-running deployment (acceptance case: 200
    emitters, >= 5x).  The scalar loop degrades with total history;
    the index is bounded by window occupancy."""
    num_windows = 600
    first_tick = 5400           # poll the last minute of a 10-minute run
    channel = _chirping_channel(num_devices)
    listener = Position()

    # Pin fast == reference before timing anything.
    for tick in (first_tick, first_tick + 57, first_tick + 299,
                 first_tick + 598):
        fast = channel.render_at(listener, tick * 0.1, (tick + 1) * 0.1)
        reference = channel.render_at_reference(
            listener, tick * 0.1, (tick + 1) * 0.1
        )
        np.testing.assert_allclose(fast.samples, reference.samples,
                                   atol=1e-9)

    def fast_sweep():
        channel.invalidate_render_cache()  # time cold renders, not memo hits
        _render_sweep(channel, channel.render_at, first_tick, num_windows)

    vectorized_s = _best_of(fast_sweep, repeats=5)
    reference_s = _best_of(
        lambda: _render_sweep(channel, channel.render_at_reference,
                              first_tick, num_windows),
        repeats=2,
    )
    # The memo path: a co-located second listener re-polling windows
    # that are still in the (bounded) cache.
    warm = lambda: _render_sweep(channel, channel.render_at,
                                 first_tick + 500, 100)
    warm()
    memoized_s = _best_of(warm, repeats=5)

    speedup = reference_s / vectorized_s
    _record_channel_bench(f"channel_render_{num_devices}emitters_600win", {
        "num_tones": len(channel.scheduled_tones),
        "num_windows": num_windows,
        "reference_ms": reference_s * 1e3,
        "vectorized_ms": vectorized_s * 1e3,
        "memoized_100win_ms": memoized_s * 1e3,
        # Registry-backed memo accounting (repro.obs counters).
        "memo_hits": channel.render_cache_hits,
        "memo_misses": channel.render_cache_misses,
        "speedup": speedup,
    })
    print(f"\nchannel render {num_devices} emitters / {num_windows} windows "
          f"({len(channel.scheduled_tones)} tones history): "
          f"reference {reference_s*1e3:.1f} ms, "
          f"vectorized {vectorized_s*1e3:.1f} ms, "
          f"memoized(100win) {memoized_s*1e3:.2f} ms, "
          f"speedup {speedup:.1f}x")
    assert speedup >= min_speedup


@pytest.mark.perf
def test_perf_obs_disabled_overhead():
    """Acceptance gate for the observability layer: with obs disabled
    (the default), the instrumented render path must stay within 5% of
    the vectorized timing recorded by the channel bench earlier in this
    same ``make bench-micro`` run (same machine, same process — an
    apples-to-apples comparison).  The enabled-mode cost is measured and
    recorded too, informationally."""
    from repro import obs

    assert not obs.enabled(), "obs must be disabled for tier-1/bench runs"
    bench_path = Path(os.environ.get("BENCH_CHANNEL_JSON",
                                     ".benchmarks/BENCH_channel.json"))
    if not bench_path.exists():
        pytest.skip("run the channel bench first (make bench-micro)")
    data = json.loads(bench_path.read_text())
    key = "channel_render_200emitters_600win"
    if key not in data:
        pytest.skip(f"no {key} record in {bench_path}")
    baseline_ms = data[key]["vectorized_ms"]

    num_windows = 600
    first_tick = 5400
    channel = _chirping_channel(200)

    def sweep():
        channel.invalidate_render_cache()
        _render_sweep(channel, channel.render_at, first_tick, num_windows)

    sweep()  # warm numpy/caches before timing
    disabled_s = _best_of(sweep, repeats=5)

    # Enabled-mode ratio: instruments are captured at construction, so
    # the observed channel must be built under an enabled registry.
    obs.enable()
    try:
        observed = _chirping_channel(200)

        def observed_sweep():
            observed.invalidate_render_cache()
            _render_sweep(observed, observed.render_at, first_tick,
                          num_windows)

        observed_sweep()
        enabled_s = _best_of(observed_sweep, repeats=5)
    finally:
        obs.disable()

    overhead = disabled_s * 1e3 / baseline_ms - 1.0
    _record_perf("obs_disabled_overhead_200emitters_600win", {
        "baseline_ms": baseline_ms,
        "disabled_ms": disabled_s * 1e3,
        "enabled_ms": enabled_s * 1e3,
        "disabled_overhead": overhead,
        "enabled_over_baseline": enabled_s * 1e3 / baseline_ms,
    })
    print(f"\nobs overhead 200 emitters / 600 windows: "
          f"baseline {baseline_ms:.1f} ms, "
          f"disabled {disabled_s*1e3:.1f} ms ({overhead:+.1%}), "
          f"enabled {enabled_s*1e3:.1f} ms "
          f"({enabled_s*1e3/baseline_ms:.2f}x baseline)")
    assert overhead < 0.05


@pytest.mark.perf
def test_perf_faults_disabled_overhead():
    """Acceptance gate for the fault-injection hooks: an attached
    injector with nothing scheduled must render bit-identically to the
    un-hooked channel and stay within 5% of its timing on the 200-
    emitter render sweep (the fault path must be free when unused)."""
    from repro.faults import FaultHarness

    num_windows = 600
    first_tick = 5400
    bare = _chirping_channel(200)
    hooked = _chirping_channel(200)
    FaultHarness(Simulator(), seed=3).acoustic(hooked)

    listener = Position()
    for tick in (first_tick, first_tick + 299):
        plain = bare.render_at(listener, tick * 0.1, (tick + 1) * 0.1)
        faulty = hooked.render_at(listener, tick * 0.1, (tick + 1) * 0.1)
        assert (plain.samples == faulty.samples).all()

    def sweep(channel):
        channel.invalidate_render_cache()
        _render_sweep(channel, channel.render_at, first_tick, num_windows)

    sweep(bare)
    sweep(hooked)  # warm both before timing
    bare_s = _best_of(lambda: sweep(bare), repeats=5)
    hooked_s = _best_of(lambda: sweep(hooked), repeats=5)
    overhead = hooked_s / bare_s - 1.0
    _record_perf("faults_idle_overhead_200emitters_600win", {
        "bare_ms": bare_s * 1e3,
        "hooked_ms": hooked_s * 1e3,
        "idle_overhead": overhead,
    })
    print(f"\nidle fault-model overhead 200 emitters / {num_windows} "
          f"windows: bare {bare_s*1e3:.1f} ms, "
          f"hooked {hooked_s*1e3:.1f} ms ({overhead:+.1%})")
    assert overhead < 0.05


@pytest.mark.perf
def test_perf_spectrum_sentinel_disabled_overhead(busy_channel):
    """Acceptance gate for the spectrum-agility tap: a *disabled*
    InterferenceSentinel wired as the detector's spectrum sink must
    leave the detection events bit-identical and stay within 5% of the
    bare detector's timing on the listening hot path (the sentinel
    must be free when unused)."""
    from repro.core.spectrum import InterferenceSentinel

    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
    watched = list(plan.allocate("all", 10).frequencies)
    microphone = Microphone(Position(), seed=1)
    windows = [microphone.record(busy_channel, tick * 0.1, (tick + 1) * 0.1)
               for tick in range(6)]

    bare = FrequencyDetector(watched)
    sentinel = InterferenceSentinel(plan, enabled=False)
    hooked = FrequencyDetector(watched, spectrum_sink=sentinel.observe)

    for tick, window in enumerate(windows):
        plain = bare.detect(window, tick * 0.1)
        tapped = hooked.detect(window, tick * 0.1)
        assert plain == tapped
    assert sentinel.windows_seen == 0, "disabled sentinel must observe nothing"

    def sweep(detector):
        for tick, window in enumerate(windows):
            detector.detect(window, tick * 0.1)

    sweep(bare)
    sweep(hooked)  # warm both before timing
    bare_s = _best_of(lambda: sweep(bare))
    hooked_s = _best_of(lambda: sweep(hooked))
    overhead = hooked_s / bare_s - 1.0
    _record_perf("spectrum_sentinel_idle_overhead_10f_6win", {
        "bare_ms": bare_s * 1e3,
        "hooked_ms": hooked_s * 1e3,
        "idle_overhead": overhead,
    })
    print(f"\nidle sentinel overhead 10 freqs / {len(windows)} windows: "
          f"bare {bare_s*1e3:.2f} ms, "
          f"hooked {hooked_s*1e3:.2f} ms ({overhead:+.1%})")
    assert overhead < 0.05


@pytest.mark.perf
def test_perf_infra_disabled_overhead(busy_channel):
    """Acceptance gate for the repro.infra layer, in two halves.

    Listening path: a detector carrying a SpectraCache must leave
    detection events bit-identical (checked on a cold, all-miss pass),
    and in the cache's steady state — repeated captures of the same
    windows, every lookup a hit — stay within 5% of the bare detector.
    The fingerprint + lookup must cost far less than the ``analyze()``
    it skips, so the memo actually pays for itself on hits.

    Send path: an MpArqSender whose breaker never trips and whose
    admission bucket never empties must produce bit-identical ArqStats
    to a bare sender on a healthy link, and the idle allow/admit checks
    (~2 us against a ~35 us per-send event machinery) must stay an
    order of magnitude below the machinery cost."""
    from repro.infra import CircuitBreaker, SpectraCache, TokenBucket

    plan = FrequencyPlan(low_hz=500.0, guard_hz=40.0)
    watched = list(plan.allocate("all", 10).frequencies)
    microphone = Microphone(Position(), seed=1)
    windows = [microphone.record(busy_channel, tick * 0.1, (tick + 1) * 0.1)
               for tick in range(24)]

    bare = FrequencyDetector(watched)
    cache = SpectraCache(capacity=32, ttl=10.0)
    cached = FrequencyDetector(watched, spectra_cache=cache)

    for tick, window in enumerate(windows):
        plain = bare.detect(window, tick * 0.1)
        via_cache = cached.detect(window, tick * 0.1)
        assert plain == via_cache
    assert cache.misses == len(windows) and cache.hits == 0

    def sweep(detector):
        for tick, window in enumerate(windows):
            detector.detect(window, tick * 0.1)

    sweep(bare)
    sweep(cached)  # warm: from here on every cached lookup hits
    # Interleave the timed pairs (alternating order): the quantity of
    # interest is a per-window delta of a few microseconds, well below
    # sequential-block clock drift, so both sides must sample the same
    # noise.
    bare_s = cached_s = float("inf")
    for round_index in range(30):
        pair = (bare, cached) if round_index % 2 == 0 else (cached, bare)
        for detector in pair:
            start = time.perf_counter()
            sweep(detector)
            elapsed = time.perf_counter() - start
            if detector is bare:
                bare_s = min(bare_s, elapsed)
            else:
                cached_s = min(cached_s, elapsed)
    assert cache.misses == len(windows), "steady state must be all hits"
    overhead = cached_s / bare_s - 1.0
    _record_perf("infra_cache_steadystate_overhead_10f_24win", {
        "bare_ms": bare_s * 1e3,
        "cached_ms": cached_s * 1e3,
        "idle_overhead": overhead,
    })
    print(f"\nsteady-state spectra-cache overhead 10 freqs / "
          f"{len(windows)} windows: bare {bare_s*1e3:.2f} ms, "
          f"cached {cached_s*1e3:.2f} ms ({overhead:+.1%})")
    assert overhead < 0.05
    assert cached_s < bare_s, "a hitting cache must beat re-analysis"

    # --- send path: idle breaker + admission on a healthy link -------
    from repro.core import (MpArqSender, MusicAgent, MusicProtocolMessage,
                            PiBridge)
    from repro.audio import Speaker
    from repro.net.switch import Switch

    message = MusicProtocolMessage(1000.0, 0.05, 70.0)
    sends = 200

    def arq_run(with_infra):
        sim = Simulator()
        agent = MusicAgent(sim, AcousticChannel(),
                           Speaker(Position(1.0, 0.0, 0.0)), name="s1")
        bridge = PiBridge(sim, Switch(sim, "s1"), agent)
        kwargs = {}
        if with_infra:
            kwargs = dict(breaker=CircuitBreaker("s1"),
                          admission=TokenBucket(10_000.0, 10_000.0,
                                                name="perf-gate"))
        sender = MpArqSender(bridge, **kwargs)
        for index in range(sends):
            sim.schedule_at(index * 0.01, sender.send, message)
        start = time.perf_counter()
        sim.run(5.0)
        return time.perf_counter() - start, sender.stats()

    arq_run(False)
    arq_run(True)  # warm both before timing
    arq_bare_s = arq_idle_s = float("inf")
    for round_index in range(10):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for with_infra in order:
            elapsed, stats = arq_run(with_infra)
            assert stats.acked == sends and stats.expired == 0
            assert stats.fast_failed == 0 and stats.shed == 0
            if with_infra:
                idle_stats = stats
                arq_idle_s = min(arq_idle_s, elapsed)
            else:
                bare_stats = stats
                arq_bare_s = min(arq_bare_s, elapsed)
    assert idle_stats == bare_stats, \
        "idle breaker/admission must not change ARQ behavior"
    arq_overhead = arq_idle_s / arq_bare_s - 1.0
    _record_perf("infra_arq_idle_overhead_200sends", {
        "bare_ms": arq_bare_s * 1e3,
        "idle_ms": arq_idle_s * 1e3,
        "idle_overhead": arq_overhead,
    })
    print(f"idle breaker+admission overhead {sends} sends: "
          f"bare {arq_bare_s*1e3:.2f} ms, "
          f"infra {arq_idle_s*1e3:.2f} ms ({arq_overhead:+.1%})")
    # The per-send allow/admit cost is real (~6%) but must never grow
    # to rival the send machinery itself.
    assert arq_overhead < 0.25


@pytest.mark.perf
def test_perf_goertzel_bank_vectorized_speedup():
    """The phasor-matrix bank must beat the scalar per-frequency loop
    by >= 5x on the paper's workload: a 16-frequency watch list over a
    50 ms capture window."""
    rng = np.random.default_rng(3)
    window = sine_tone(740.0, 0.05, level_db=62.0).mix(
        white_noise(0.05, level_db=45.0, rng=rng)
    )
    frequencies = [500.0 + 40.0 * index for index in range(16)]
    bank = GoertzelBank(frequencies)

    vectorized = np.array([r.magnitude for r in bank.analyze(window)])
    reference = np.array([goertzel_magnitude(window, f) for f in frequencies])
    np.testing.assert_allclose(vectorized, reference, atol=1e-9)

    vectorized_s = _best_of(lambda: bank.analyze(window))
    scalar_s = _best_of(
        lambda: [goertzel_magnitude(window, f) for f in frequencies]
    )
    speedup = scalar_s / vectorized_s
    _record_perf("goertzel_bank_16f_50ms", {
        "scalar_us": scalar_s * 1e6,
        "vectorized_us": vectorized_s * 1e6,
        "speedup": speedup,
    })
    print(f"\nGoertzelBank.analyze 16f/50ms: scalar {scalar_s*1e6:.1f} us, "
          f"vectorized {vectorized_s*1e6:.1f} us, speedup {speedup:.1f}x")
    assert speedup >= 5.0


@pytest.mark.perf
def test_perf_spectrogram_batched_speedup():
    """The batched strided-frame spectrogram must beat the per-frame
    loop by >= 3x on a 10 s capture at 50 ms frames."""
    rng = np.random.default_rng(4)
    capture = sine_tone(1000.0, 10.0, level_db=62.0).mix(
        white_noise(10.0, level_db=45.0, rng=rng)
    )
    analyzer = SpectrumAnalyzer()

    times, freqs, mags = power_spectrogram(capture, 0.05, analyzer=analyzer)
    ref = power_spectrogram_reference(capture, 0.05, analyzer=analyzer)
    np.testing.assert_array_equal(times, ref[0])
    np.testing.assert_allclose(mags, ref[2], atol=1e-9)

    batched_s = _best_of(
        lambda: power_spectrogram(capture, 0.05, analyzer=analyzer),
        repeats=10,
    )
    looped_s = _best_of(
        lambda: power_spectrogram_reference(capture, 0.05, analyzer=analyzer),
        repeats=10,
    )
    speedup = looped_s / batched_s
    _record_perf("power_spectrogram_10s_50ms", {
        "looped_ms": looped_s * 1e3,
        "batched_ms": batched_s * 1e3,
        "speedup": speedup,
    })
    print(f"\npower_spectrogram 10s/50ms: looped {looped_s*1e3:.2f} ms, "
          f"batched {batched_s*1e3:.2f} ms, speedup {speedup:.1f}x")
    assert speedup >= 3.0


@pytest.mark.perf
def test_perf_workload_driver_vs_perflow_sources():
    """The columnar VectorizedFlowDriver must beat the per-flow-object
    source chain by >= 10x at 10k flows while emitting the identical
    per-flow packet counts (XEXT16 acceptance gate)."""
    from repro.experiments.xext16 import measure_speedup

    point = measure_speedup(num_flows=10_000, duration=2.0)
    assert point.counts_match, "vectorized/per-flow packet counts diverged"
    _record_perf("workload_driver_10k_flows_2s", {
        "packets": point.packets_vectorized,
        "reference_s": point.reference_wall_s,
        "vectorized_s": point.vectorized_wall_s,
        "speedup": point.speedup,
    })
    print(f"\nVectorizedFlowDriver 10k flows/2s: per-flow "
          f"{point.reference_wall_s:.2f} s, vectorized "
          f"{point.vectorized_wall_s:.2f} s, speedup {point.speedup:.1f}x")
    assert point.speedup >= 10.0


@pytest.mark.perf
def test_perf_fleet_supervisor_disabled_overhead():
    """Acceptance gate for the self-healing layer: a supervised run
    with no fault plan, no hedging and no deadlines must produce the
    bit-identical fleet report within 5% of the plain serial driver's
    wall-clock (recovery machinery must be free when unused)."""
    from repro.fleet import (
        FleetSpec,
        SupervisorPolicy,
        run_fleet,
        run_fleet_supervised,
    )

    spec = FleetSpec(num_rooms=6, switches_per_room=4,
                     horizon=1.0, seed=17)
    policy = SupervisorPolicy(checkpoint=False)

    plain = run_fleet(spec, num_shards=2, backend="serial")
    supervised = run_fleet_supervised(spec, num_shards=2,
                                      backend="serial", policy=policy)
    assert (supervised.identity_signature()
            == plain.identity_signature()), \
        "idle supervisor changed the result"

    plain_s = _best_of(
        lambda: run_fleet(spec, num_shards=2, backend="serial"),
        repeats=3)
    supervised_s = _best_of(
        lambda: run_fleet_supervised(spec, num_shards=2,
                                     backend="serial", policy=policy),
        repeats=3)
    overhead = supervised_s / plain_s - 1.0
    _record_perf("fleet_supervisor_idle_overhead_6rooms_serial", {
        "plain_ms": plain_s * 1e3,
        "supervised_ms": supervised_s * 1e3,
        "idle_overhead": overhead,
    })
    print(f"\nidle supervisor overhead 6 rooms serial: "
          f"plain {plain_s*1e3:.1f} ms, "
          f"supervised {supervised_s*1e3:.1f} ms ({overhead:+.1%})")
    assert overhead < 0.05
