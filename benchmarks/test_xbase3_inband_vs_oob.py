"""XBASE3 — in-band management vs the acoustic out-of-band channel
(§1 motivation: "data plane or hardware failures could cut off network
management traffic as well").

Shape to hold: when the data plane dies mid-run, in-band heartbeat
delivery collapses while the acoustic heartbeat keeps arriving.
"""

from conftest import report

from repro.experiments import inband_vs_oob


def test_xbase3_failure_survival(run_once):
    result = run_once(inband_vs_oob)
    report("XBASE3: management heartbeat delivery through a data-plane "
           "failure at t=8 s (20 s run)", [
        ("in-band delivery rate", f"{result.inband_delivery_rate:.2f}"),
        ("in-band max silent gap", f"{result.inband_max_gap:.1f} s"),
        ("acoustic delivery rate", f"{result.acoustic_delivery_rate:.2f}"),
    ])
    # In-band: everything after the cut is lost (~60% of the run).
    assert result.inband_delivery_rate < 0.6
    assert result.inband_max_gap > 10.0
    # Acoustic: unaffected.
    assert result.acoustic_survived


def test_xbase3_early_failure(run_once):
    """Failure right at the start: in-band delivers almost nothing."""
    result = run_once(inband_vs_oob, duration=15.0, failure_time=1.0)
    report("XBASE3: failure at t=1 s", [
        ("in-band delivery rate", f"{result.inband_delivery_rate:.2f}"),
        ("acoustic delivery rate", f"{result.acoustic_delivery_rate:.2f}"),
    ])
    assert result.inband_delivery_rate < 0.15
    assert result.acoustic_survived
