"""FIG6 — fan spectrograms: {datacenter, office} × {fan on, fan off}.

Paper: "Sound waves of a single server are detectable despite the
datacenter noise" — the fan-on panels show the blade-pass harmonics as
bright horizontal lines; the fan-off panels show only ambience.  Shape
to hold: the blade-pass line stands well above the room's floor when
on, and collapses to (or below) the floor when off, in both rooms.
"""

from conftest import report

from repro.experiments import fan_spectrogram_panel


def _panel_rows(panel):
    return [
        ("room", panel.room),
        ("fan on", panel.fan_on),
        ("blade-pass", f"{panel.blade_pass_hz:.0f} Hz"),
        ("line level", f"{panel.blade_line_level_db:.1f} dB"),
        ("room floor", f"{panel.noise_floor_db:.1f} dB"),
        ("prominence", f"{panel.line_prominence_db:.1f} dB"),
    ]


def test_fig6a_datacenter_fan_on(run_once):
    panel = run_once(fan_spectrogram_panel, "datacenter", True)
    report("Fig 6a: datacenter, server ON", _panel_rows(panel))
    assert panel.line_prominence_db > 15.0


def test_fig6b_datacenter_fan_off(run_once):
    panel = run_once(fan_spectrogram_panel, "datacenter", False)
    report("Fig 6b: datacenter, server OFF", _panel_rows(panel))
    assert panel.line_prominence_db < 5.0


def test_fig6c_office_fan_on(run_once):
    panel = run_once(fan_spectrogram_panel, "office", True)
    report("Fig 6c: office, server ON", _panel_rows(panel))
    assert panel.line_prominence_db > 25.0


def test_fig6d_office_fan_off(run_once):
    panel = run_once(fan_spectrogram_panel, "office", False)
    report("Fig 6d: office, server OFF", _panel_rows(panel))
    assert panel.line_prominence_db < 5.0


def test_fig6_on_off_contrast_both_rooms(run_once):
    """The on/off line-level gap is large in both rooms (the paper's
    core §7 observation)."""
    def contrast(room):
        on = fan_spectrogram_panel(room, True)
        off = fan_spectrogram_panel(room, False)
        return on.blade_line_level_db - off.blade_line_level_db

    gaps = run_once(lambda: {room: contrast(room)
                             for room in ("datacenter", "office")})
    report("Fig 6: on/off blade-line contrast",
           [(room, f"{gap:.1f} dB") for room, gap in gaps.items()])
    assert gaps["datacenter"] > 20.0
    assert gaps["office"] > 40.0
