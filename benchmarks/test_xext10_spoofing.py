"""XEXT10 — acoustic insecurity (§2), attacked and defended.

The paper's related-work section catalogs sound-injection attacks; MDN
itself is a target.  This benchmark measures (a) how completely a
rogue speaker controls the *plain* protocol, and (b) the rolling-code
defense's rejection rate against spoof, replay and wrong-key forgery,
while legitimate chirps keep flowing.
"""

from conftest import report

from repro.audio import Position, Speaker, ToneSpec
from repro.core.apps import BandToneMap, QueueChirper, QueueMonitorApp
from repro.core.apps.secure_chirp import (
    RollingCode,
    SecureQueueChirper,
    SecureQueueMonitorApp,
)
from repro.experiments.rigs import build_testbed

KEY = b"shared-secret"


def build_secure(key=KEY):
    """A secured queue-monitoring rig (mirrors the integration tests)."""
    testbed = build_testbed("single")
    port = testbed.topo.port_towards("s1", "h2")
    tones = BandToneMap.from_frequencies(
        testbed.plan.allocate("s1/bands", 3).frequencies
    )
    code_block = testbed.plan.allocate("s1/code", 16)
    code_agent = testbed.extra_agent("s1-code", Position(0.0, -0.9, 0.0))
    chirper = SecureQueueChirper(
        testbed.sim, testbed.topo.switches["s1"], port,
        testbed.agents["s1"], code_agent, tones,
        RollingCode(key, code_block),
    )
    app = SecureQueueMonitorApp(
        testbed.controller, "s1", tones, RollingCode(key, code_block)
    )
    testbed.controller.start()
    return testbed, tones, code_block, chirper, app


def test_xext10_plain_protocol_fully_spoofable(run_once):
    def run():
        testbed = build_testbed("single")
        port = testbed.topo.port_towards("s1", "h2")
        tones = BandToneMap(500.0, 600.0, 700.0)
        QueueChirper(testbed.sim, testbed.topo.switches["s1"], port,
                     testbed.agents["s1"], tones)
        app = QueueMonitorApp(testbed.controller, "s1", tones)
        testbed.controller.start()
        attacker = Speaker(Position(1.5, 1.5, 0.0))
        injections = 5
        for index in range(injections):
            testbed.sim.schedule_at(
                1.05 + index * 1.0,
                lambda: attacker.play(testbed.channel, testbed.sim.now,
                                      ToneSpec(700.0, 0.2, 75.0)),
            )
        testbed.sim.run(8.0)
        fake_highs = sum(1 for _t, band in app.band_history
                         if band == "high")
        return injections, fake_highs

    injections, fake_highs = run_once(run)
    report("XEXT10: spoofing the plain chirp protocol", [
        ("injected fake congestion tones", injections),
        ("believed by the controller", fake_highs),
    ])
    assert fake_highs >= injections - 1  # essentially every one lands


def test_xext10_rolling_code_rejects_attacks(run_once):
    def run():
        testbed, tones, code_block, chirper, app = build_secure()
        attacker = Speaker(Position(1.5, 1.5, 0.0))
        stale_code = RollingCode(KEY, code_block).current_frequency("high")
        wrong_key = RollingCode(b"guess", code_block)

        def bare_spoof() -> None:
            attacker.play(testbed.channel, testbed.sim.now,
                          ToneSpec(tones.high, 0.2, 75.0))

        def replay() -> None:
            now = testbed.sim.now
            attacker.play(testbed.channel, now,
                          ToneSpec(tones.high, 0.2, 75.0))
            attacker.play(testbed.channel, now,
                          ToneSpec(stale_code, 0.2, 75.0))

        def forge() -> None:
            now = testbed.sim.now
            attacker.play(testbed.channel, now,
                          ToneSpec(tones.high, 0.2, 75.0))
            attacker.play(testbed.channel, now,
                          ToneSpec(wrong_key.current_frequency("high"), 0.2, 75.0))
            wrong_key.advance()

        for index, attack in enumerate([bare_spoof, replay, forge] * 2):
            testbed.sim.schedule_at(2.05 + index * 0.7, attack)
        testbed.sim.run(8.0)
        believed_high = sum(1 for _t, band in app.band_history
                            if band == "high")
        return believed_high, app.rejected_spoofs

    believed_high, rejected = run_once(run)
    # Per-attempt forgery probability = lookahead / |code block| = 2/16.
    report("XEXT10: rolling-code defense vs 6 attacks "
           "(bare spoof / replay / wrong key, x2; "
           "per-attempt guess probability 2/16)", [
        ("fake congestion events believed", believed_high),
        ("spoofed tones rejected", rejected),
    ])
    # Expected believed over 6 attempts: 6 * 2/16 = 0.75; this seeded
    # run must stay within the honest bound (and usually hits zero).
    assert believed_high <= 1
    assert rejected >= 5
