"""XEXT9 — single-controller monitoring scale (§5/§8 speculation,
measured).

The paper's testbed had 7 switches and speculates about datacenter
scale within the ~1000-frequency budget.  This sweep loads one
controller with up to 200 chirping devices at the paper's 20 Hz
spacing and measures recall, phantom detections, per-window compute,
and plan utilization.
"""

from conftest import report

from repro.experiments import monitoring_scale_sweep


def test_xext9_scale_sweep(run_once):
    points = run_once(monitoring_scale_sweep)
    rows = [("devices", "active", "recall", "phantoms", "detect ms",
             "render ms", "memo ms", "plan util")]
    for point in points:
        rows.append((point.num_devices, point.num_active,
                     f"{point.recall:.2f}", point.false_positives,
                     f"{point.detect_ms:.2f}",
                     f"{point.render_ms:.2f}",
                     f"{point.cached_render_ms:.3f}",
                     f"{point.plan_utilization:.0%}"))
    report("XEXT9: one controller vs N chirping devices (20 Hz grid)",
           rows)
    for point in points:
        assert point.recall == 1.0
        assert point.false_positives == 0
    # Compute stays compatible with the 100 ms listening budget: both
    # the detector and the (synthesis-side) render path must fit.
    assert all(point.detect_ms < 50.0 for point in points)
    assert all(point.render_ms < 50.0 for point in points)
    # Re-polling the same window hits the channel's render memo.
    assert all(point.cached_render_ms < 5.0 for point in points)


def test_xext9_paper_testbed_size_is_trivial(run_once):
    """The paper's own 7-switch scale, specifically."""
    points = run_once(monitoring_scale_sweep, device_counts=(7,))
    point = points[0]
    report("XEXT9: the paper's 7-switch testbed", [
        ("recall", f"{point.recall:.2f}"),
        ("detect time", f"{point.detect_ms:.2f} ms"),
    ])
    assert point.recall == 1.0
