"""FIG4A/B — acoustic heavy-hitter detection (Figure 4a clean, 4b with
Sia's *Cheap Thrills* as background noise — here the SongNoise
substitute, see DESIGN.md).

Shape to hold: the heavy flow's bucket rings above the per-interval
threshold in both conditions; mouse buckets never do.
"""

from conftest import report

from repro.experiments import heavy_hitter_experiment


def _report(result, title):
    rows = [("interval end (s)", "heavy-bucket count")]
    for time, count in zip(result.per_interval_heavy_counts.times,
                           result.per_interval_heavy_counts.values):
        rows.append((f"{time:.0f}", int(count)))
    rows.append(("heavy flow", str(result.heavy_flow)))
    rows.append(("bucket frequency", f"{result.heavy_frequency:.0f} Hz"))
    rows.append(("detected", result.heavy_detected))
    rows.append(("false-positive buckets",
                 sorted(result.false_positive_frequencies)))
    report(title, rows)


def test_fig4a_clean(run_once):
    result = run_once(heavy_hitter_experiment, with_song=False)
    _report(result, "Fig 4a: heavy hitter, no background noise")
    assert result.heavy_detected
    assert not result.false_positive_frequencies
    # Detection latency: flagged within the first two intervals.
    assert result.alerts[0].interval_start <= 2.0


def test_fig4b_with_song(run_once):
    result = run_once(heavy_hitter_experiment, with_song=True)
    _report(result, "Fig 4b: heavy hitter, pop song playing")
    assert result.heavy_detected
    assert not result.false_positive_frequencies


def test_fig4ab_multiple_heavies(run_once):
    """Beyond the paper: two simultaneous heavy flows, both flagged."""
    from repro.experiments.fig4 import LINK_CAPACITY_PPS
    from repro.experiments.rigs import build_testbed
    from repro.core.apps import (
        FlowToneMapper, HeavyHitterDetectorApp, HeavyHitterEmitter,
    )
    from repro.net import FlowMixWorkload

    def run():
        testbed = build_testbed("single")
        mapper = FlowToneMapper(testbed.plan.allocate("s1", 16))
        HeavyHitterEmitter(testbed.topo.switches["s1"],
                           testbed.agents["s1"], mapper)
        app = HeavyHitterDetectorApp(testbed.controller, mapper)
        testbed.controller.start()
        mix = FlowMixWorkload(
            testbed.topo.hosts["h1"], testbed.topo.hosts["h2"].ip,
            link_capacity_pps=LINK_CAPACITY_PPS, num_flows=10, num_heavy=2,
            heavy_fraction=0.25, seed=5,
        )
        mix.launch()
        testbed.sim.run(8.0)
        return mix, mapper, app

    mix, mapper, app = run_once(run)
    flagged = app.heavy_frequencies()
    expected = {mapper.frequency_of(flow) for flow in mix.heavy_flows}
    report("Fig 4a/b extension: two heavy flows", [
        ("expected buckets", sorted(expected)),
        ("flagged buckets", sorted(flagged)),
    ])
    assert expected <= flagged
