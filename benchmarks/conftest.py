"""Shared reporting helpers for the figure-regeneration benchmarks.

Each benchmark runs one experiment (via ``benchmark.pedantic`` so the
whole suite works under ``pytest --benchmark-only``), prints the
series/rows the corresponding paper figure reports, and asserts the
*shape* documented in DESIGN.md/EXPERIMENTS.md.
"""

import pytest


def report(title: str, rows: list[tuple]) -> None:
    """Print a labelled table that survives pytest's capture with -s."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + " | ".join(str(cell) for cell in row))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark fixture.

    Experiments are multi-second simulations; timing them once is
    enough and keeps the suite fast.
    """

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
