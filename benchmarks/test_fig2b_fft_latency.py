"""FIG2B — CDF of FFT processing time (Figure 2b).

Paper: ~50 ms audio samples; "approximately 90% of our samples were
processed in 0.35 ms or less."  Shape to hold: sub-millisecond p90 on
commodity hardware (our absolute numbers come from this machine and
are recorded in EXPERIMENTS.md).
"""

from conftest import report

from repro.experiments import fft_latency_cdf


def test_fig2b_processing_time_cdf(run_once):
    result = run_once(fft_latency_cdf, num_samples=1000)
    rows = [("percentile", "ms")]
    for quantile, value in result.cdf_points():
        rows.append((f"p{quantile}", f"{value:.4f}"))
    report(
        f"Fig 2b: FFT time CDF for {result.window_duration_ms:.0f} ms windows"
        " (paper: p90 <= 0.35 ms)",
        rows,
    )
    # Paper's headline: 90% of samples <= 0.35 ms.  Allow headroom for
    # slow CI machines while still asserting sub-millisecond shape.
    assert result.percentile_ms(90) < 1.0
    assert result.percentile_ms(50) < 0.5


def test_fig2b_throughput_benchmark(benchmark):
    """Raw per-window analysis throughput (a true pytest-benchmark
    measurement: many rounds)."""
    from repro.audio import SpectrumAnalyzer, sine_tone

    analyzer = SpectrumAnalyzer()
    window = sine_tone(1000.0, 0.05, 65.0)
    spectrum = benchmark(analyzer.analyze, window)
    assert spectrum.level_at(1000.0) > 55.0
