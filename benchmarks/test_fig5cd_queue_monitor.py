"""FIG5C/D — queue-size monitoring (Figure 5c queue length, 5d
spectrogram of the 500/600/700 Hz band tones).

Paper: a virtual switch plays 500 Hz below 25 packets, 600 Hz between
25 and 75, 700 Hz above 75, sampled every 300 ms; after the traffic
drains "the queue size gets again lower than 25 packets and the
controller is notified with another sound at a lower frequency
(500 Hz)".  Shape to hold: the heard-band sequence walks up through all
three tones and back down, consistent with the actual queue trace.
"""

import numpy as np
from conftest import report

from repro.experiments import queue_monitor_experiment


def test_fig5c_band_sequence(run_once):
    result = run_once(queue_monitor_experiment)
    rows = [("t (s)", "queue (pkts)")]
    for time, length in zip(result.queue_series.times,
                            result.queue_series.values):
        rows.append((f"{time:.1f}", int(length)))
    report("Fig 5c: queue length (thresholds 25 / 75)", rows)
    report("Fig 5c: bands heard over time",
           [(f"{time:.1f}", band) for time, band in result.band_history])

    bands = result.bands_heard()
    assert bands == ["low", "medium", "high", "medium", "low"]
    assert result.final_band == "low"
    assert result.peak_queue > 75


def test_fig5c_heard_band_matches_true_queue(run_once):
    """Cross-check: at every band transition the controller heard, the
    true queue occupancy was in (or adjacent to) that band."""
    from repro.net import QueueBands

    result = run_once(queue_monitor_experiment)
    bands = QueueBands()
    order = {"low": 0, "medium": 1, "high": 2}
    for time, heard in result.band_history:
        true_length = result.queue_series.value_at(time)
        true_band = bands.classify(int(true_length))
        # The tone encodes the queue at the last 300 ms sample, so
        # allow one band of motion between sample and hearing.
        assert abs(order[heard] - order[true_band]) <= 1


def test_fig5d_spectrogram_contains_three_tones(run_once):
    """The 5d spectrogram contains energy at all three band
    frequencies (mel-normalized in the paper; we check in Hz)."""
    result = run_once(queue_monitor_experiment)
    times, centers, magnitudes = result.spectrogram
    rows = []
    for target in (500.0, 600.0, 700.0):
        band_index = int(np.argmin(np.abs(centers - target)))
        peak = magnitudes[:, band_index].max()
        rows.append((f"{target:.0f} Hz", f"{peak:.5f}"))
        assert peak > 0.001
    report("Fig 5d: per-band peak magnitudes", rows)
