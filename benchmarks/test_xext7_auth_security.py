"""XEXT7 — brute-force resistance of melody authentication.

Section 4 offers sound sequences as an "(additional) out-of-band
authentication mechanism".  How strong is it?  This benchmark throws a
random-knock attacker at both the plain sequence FSM and the
rhythm-enforcing melody authenticator and counts accidental opens.
"""

import numpy as np
from conftest import report

from repro.core import sequence_machine
from repro.core.apps.melody_auth import Melody, MelodyAuthenticator
from repro.experiments.rigs import build_testbed


def test_xext7_random_attacker_state_space(run_once):
    """Pure FSM math first: a uniform random attacker over K symbols
    needs ~K^N guesses against an N-knock secret.  Measured accidental
    acceptance over bounded attempts matches the expectation's order of
    magnitude."""
    def run():
        rng = np.random.default_rng(7)
        alphabet, secret = 4, [0, 2, 1]
        opens = 0
        trials = 400
        knocks_per_trial = 30
        for _ in range(trials):
            machine = sequence_machine(secret)
            for _ in range(knocks_per_trial):
                machine.feed(int(rng.integers(alphabet)))
                if machine.accepted:
                    opens += 1
                    break
        return opens, trials, knocks_per_trial, alphabet, len(secret)

    opens, trials, knocks, alphabet, depth = run_once(run)
    # Expected accidental opens: roughly knocks / alphabet^depth per
    # trial (a fresh chance at each position).
    expected_rate = knocks / alphabet ** depth
    report("XEXT7: random knocker vs 3-note secret (4-symbol alphabet)", [
        ("trials x knocks", f"{trials} x {knocks}"),
        ("accidental opens", opens),
        ("open rate / trial", f"{opens / trials:.3f}"),
        ("expected order", f"~{expected_rate:.3f}"),
    ])
    assert opens / trials < 4 * expected_rate + 0.05


def test_xext7_rhythm_requirement_blocks_slow_attacks(run_once):
    """End to end on the air: an attacker spraying one random note per
    3 s can never satisfy a 1.5 s max-gap melody, no matter how long it
    tries — each note times the machine out before the next lands."""
    def run():
        testbed = build_testbed("single")
        allocation = testbed.plan.allocate("s1", 4)
        melody = Melody(notes=(0, 2, 1), allocation=allocation, max_gap=1.5)
        auth = MelodyAuthenticator(testbed.controller, melody)
        testbed.controller.start()
        rng = np.random.default_rng(3)
        agent = testbed.agents["s1"]
        for step in range(30):  # 90 s of slow spraying
            note = int(rng.integers(0, 3))
            testbed.sim.schedule_at(
                1.0 + step * 3.0,
                lambda n=note: agent.play(melody.frequency_of(n), 0.12, 70.0),
            )
        testbed.sim.run(95.0)
        return auth

    auth = run_once(run)
    report("XEXT7: slow sprayer vs rhythm-enforced melody", [
        ("notes sprayed", len(auth.attempt_log)),
        ("timeouts forced", auth.timeouts),
        ("accepted", auth.accepted),
    ])
    assert not auth.accepted
    assert auth.timeouts >= 25  # nearly every note reset the attempt
