"""FIG3 — port knocking (Figure 3a bytes sent/received, 3b spectrogram).

Paper: sender transmits to a closed port for ~34 s; after the third
correctly-ordered knock tone the controller installs the opening flow
entry and received bytes start tracking sent bytes.  Shape to hold:
received == 0 before the third knock; received grows at the send rate
afterwards; the wrong order never opens.
"""

import numpy as np
from conftest import report

from repro.experiments import port_knocking_experiment


def test_fig3_bytes_sent_received(run_once):
    result = run_once(port_knocking_experiment)
    rows = [("t (s)", "sent (kB)", "recvd (kB)")]
    for time, sent in zip(result.sent_bytes.times[::4],
                          result.sent_bytes.values[::4]):
        received = result.received_bytes.value_at(time)
        rows.append((f"{time:.1f}", f"{sent / 1000:.0f}",
                     f"{received / 1000:.0f}"))
    report("Fig 3a: bytes sent / received", rows)

    assert result.opened
    # Nothing delivered before the port opened.
    assert result.received_bytes.value_at(result.opened_at - 0.6) == 0.0
    # Delivery tracks sending afterwards (same slope, lag < 1 sample).
    final_sent = result.sent_bytes.final()
    final_received = result.received_bytes.final()
    dropped_window = result.opened_at  # everything before open was dropped
    expected_delivered = final_sent * (1 - dropped_window / 34.0)
    assert final_received >= 0.85 * expected_delivered
    # Three knocks heard in the configured order.
    assert result.knock_ports_heard == [7001, 7002, 7003]


def test_fig3b_knock_spectrogram_shows_three_tones(run_once):
    result = run_once(port_knocking_experiment)
    times, centers, magnitudes = result.spectrogram
    # Count frames whose dominant band is strong: the three knocks
    # appear as three disjoint bursts.
    frame_peak = magnitudes.max(axis=1)
    threshold = frame_peak.max() * 0.25
    active = frame_peak > threshold
    bursts = int(np.sum(np.diff(active.astype(int)) == 1))
    bursts += int(active[0])
    report("Fig 3b: knock bursts on the spectrogram", [("bursts", bursts)])
    assert bursts == 3


def test_fig3_wrong_order_stays_closed(run_once):
    result = run_once(port_knocking_experiment, correct_order=False)
    report("Fig 3 control: wrong knock order", [
        ("opened", result.opened),
        ("received bytes", result.received_bytes.final()),
    ])
    assert not result.opened
    assert result.received_bytes.final() == 0.0
