"""FIG4C/D — acoustic port-scan detection (Figure 4c clean, 4d with the
song interferer).

Shape to hold: the sequential scan shows as a monotonically rising
dominant-frequency track on the mel spectrogram (the paper's "clear
logarithmic line"), the distinct-port rule fires, and both hold under
the song.
"""

import numpy as np
from conftest import report

from repro.experiments import port_scan_experiment


def _summarize(result, title):
    track = result.dominant_track_hz
    rows = [
        ("scan detected", result.scan_detected),
        ("distinct ports in alert",
         result.alerts[0].distinct_ports if result.alerts else 0),
        ("ports heard (ordered)", result.ports_heard[:10]),
        ("dominant track start/end Hz",
         f"{track[0]:.0f} -> {track[-1]:.0f}" if len(track) else "n/a"),
    ]
    report(title, rows)


def test_fig4c_clean(run_once):
    result = run_once(port_scan_experiment, with_song=False)
    _summarize(result, "Fig 4c: port scan, no background noise")
    assert result.scan_detected
    assert result.ports_heard == sorted(result.ports_heard)
    assert len(result.ports_heard) >= 18  # near-total port coverage


def test_fig4c_spectrogram_line_rises(run_once):
    """The sweep: dominant frequency across active scan frames rises
    monotonically (the mel axis is what makes it 'logarithmic')."""
    result = run_once(port_scan_experiment, with_song=False)
    times, centers, magnitudes = result.spectrogram
    frame_peak = magnitudes.max(axis=1)
    active = frame_peak > frame_peak.max() * 0.2
    track = result.dominant_track_hz[active]
    rises = np.sum(np.diff(track) > 0)
    falls = np.sum(np.diff(track) < 0)
    report("Fig 4c: track monotonicity", [
        ("active frames", int(active.sum())),
        ("rising steps", int(rises)),
        ("falling steps", int(falls)),
    ])
    assert rises >= 10
    assert falls <= 2  # allow boundary jitter


def test_fig4d_with_song(run_once):
    result = run_once(port_scan_experiment, with_song=True)
    _summarize(result, "Fig 4d: port scan, pop song playing")
    assert result.scan_detected
    assert len(result.ports_heard) >= 15
