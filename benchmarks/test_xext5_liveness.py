"""XEXT5 — acoustic device liveness monitoring.

The §1 management-task list ("device booting, restart ...") and §7's
powered-off-server anecdote motivate knowing a box's true state out of
band.  Every switch chirps a per-device heartbeat; the controller
declares a device down after two missed beats.  Also includes the
RED-vs-DCTCP marking ablation for the in-band comparators.
"""

from conftest import report

from repro.core.apps import build_liveness_mesh
from repro.experiments.rigs import build_testbed


def test_xext5_device_death_detected(run_once):
    def run():
        testbed = build_testbed("rhombus")
        chirpers, monitor = build_liveness_mesh(
            testbed.controller, testbed.agents, testbed.plan
        )
        testbed.controller.start()
        testbed.sim.run(4.0)
        alive_at_4 = list(monitor.devices_down())
        chirpers["s_top"].kill()
        death_time = testbed.sim.now
        testbed.sim.run(12.0)
        alert = next(a for a in monitor.alerts if a.device == "s_top")
        return alive_at_4, death_time, alert, monitor.devices_down()

    alive_at_4, death_time, alert, down = run_once(run)
    report("XEXT5: acoustic liveness monitoring (4 switches)", [
        ("false alarms before failure", alive_at_4),
        ("s_top killed at", f"{death_time:.1f} s"),
        ("declared down at", f"{alert.time:.1f} s"),
        ("detection latency", f"{alert.time - death_time:.1f} s"),
        ("down set at end", down),
    ])
    assert alive_at_4 == []
    assert down == ["s_top"]
    assert alert.time - death_time < 3.5


def test_xext5_red_vs_dctcp_marking(run_once):
    """Ablation: classic RED (EWMA) marks later than the DCTCP-style
    instantaneous threshold under a sharp congestion onset — context
    for why even in-band mechanisms differ, while the acoustic chirp
    is bounded by its period regardless."""
    from repro.baselines import ECNMarker
    from repro.baselines.red import REDMarker
    from repro.net import ConstantRateSource, Simulator, single_switch_topology

    def run():
        sim = Simulator()
        topo = single_switch_topology(sim, 2, bandwidth_bps=2_000_000)
        port = topo.port_towards("s1", "h2")
        direction = topo.switches["s1"].ports[port]
        dctcp = ECNMarker(direction, mark_threshold=25)
        red = REDMarker(direction, min_threshold=15, max_threshold=45,
                        weight=0.02, seed=1)
        first_mark = {"dctcp": None, "red": None}

        def on_forward(packet, _in, out):
            if out != port:
                return
            before = packet.ecn_marked
            dctcp.maybe_mark(packet, sim.now)
            if packet.ecn_marked and not before and first_mark["dctcp"] is None:
                first_mark["dctcp"] = sim.now
            packet.ecn_marked = before  # undo so RED judges independently
            red.maybe_mark(packet, sim.now)
            if packet.ecn_marked and not before and first_mark["red"] is None:
                first_mark["red"] = sim.now

        topo.switches["s1"].on_forward(on_forward)
        source = ConstantRateSource(topo.hosts["h1"], "10.0.0.2", 80,
                                    rate_pps=450, ecn_capable=True)
        source.launch()
        sim.run(8.0)
        return first_mark, dctcp.marked_count, red.marked_count

    first_mark, dctcp_count, red_count = run_once(run)
    report("XEXT5 ablation: DCTCP-style vs RED first-mark time", [
        ("DCTCP instantaneous", f"{first_mark['dctcp']:.3f} s"),
        ("RED (EWMA)", f"{first_mark['red']:.3f} s"),
        ("marks: dctcp/red", f"{dctcp_count}/{red_count}"),
    ])
    assert first_mark["dctcp"] is not None
    assert first_mark["red"] is not None
    # The EWMA lags the instantaneous rule on a sharp onset.
    assert first_mark["red"] >= first_mark["dctcp"]
