"""FIG7 — amplitude-difference fan failure detection.

Paper: "The difference in amplitude for certain frequencies is
considerably larger when comparing two audio signals of the fan on and
off (blue continuous line in Figure 7) than when comparing two samples
of a functioning fan (red dashed line)."  Shape to hold: the on↔off
score exceeds the on↔on score by a wide margin in both rooms, the
threshold separates them, and the alert fires shortly after the
failure (bounded by the spin-down transient).
"""

from conftest import report

from repro.experiments import fan_failure_experiment


def _rows(result):
    return [
        ("room", result.room),
        ("failure injected", f"{result.failure_time:.1f} s"),
        ("detected at", f"{result.detection_time:.1f} s"
         if result.detection_time else "never"),
        ("on-on max score", f"{result.on_on_max_score:.1f}"),
        ("on-off min score", f"{result.on_off_min_score:.1f}"),
        ("separation ratio", f"{result.separation_ratio:.1f}x"),
        ("threshold", f"{result.threshold:.1f}"),
    ]


def test_fig7a_datacenter(run_once):
    result = run_once(fan_failure_experiment, room="datacenter")
    report("Fig 7a: datacenter failure detection", _rows(result))
    assert result.detected
    assert result.separation_ratio > 2.0
    assert result.detection_time - result.failure_time < 3.0


def test_fig7b_office(run_once):
    result = run_once(fan_failure_experiment, room="office")
    report("Fig 7b: office failure detection", _rows(result))
    assert result.detected
    assert result.separation_ratio > 5.0
    assert result.detection_time - result.failure_time < 3.0


def test_fig7_score_timeline(run_once):
    """The full Figure 7 curve: scores flat before the failure, then a
    sustained jump (not a single spike)."""
    result = run_once(fan_failure_experiment, room="office", duration=16.0,
                      failure_time=8.0)
    rows = [("t (s)", "score")]
    for time, score in zip(result.scores.times, result.scores.values):
        rows.append((f"{time:.1f}", f"{score:.1f}"))
    report("Fig 7: amplitude-difference score over time", rows)
    post_failure = result.scores.window(result.failure_time + 2.5, 16.0)
    assert all(score > result.threshold for score in post_failure.values)


def test_fig7_no_false_alarm_on_healthy_server(run_once):
    """A healthy run never alerts in either room."""
    from repro.core.apps import FanWatchdog
    from repro.fans import datacenter_scene, office_scene

    def run():
        alarms = {}
        for name, scene_fn in (("datacenter", datacenter_scene),
                               ("office", office_scene)):
            scene = scene_fn(duration=12.0)
            watchdog = FanWatchdog(scene.channel, scene.microphone)
            watchdog.run(0.0, 12.0)
            alarms[name] = len(watchdog.alerts)
        return alarms

    alarms = run_once(run)
    report("Fig 7 control: healthy server", list(alarms.items()))
    assert alarms == {"datacenter": 0, "office": 0}
