"""XEXT11 — acoustic source localization: "which rack is beeping?"

§7's footnote ("we heard a misconfigured server beeping for weeks") and
§8's microphone arrays combine into a localization service: TDOA of a
beep across array stations pins the emitter to a rack.  This benchmark
measures localization error across source positions and under
interference.
"""

from conftest import report

from repro.audio import AcousticChannel, Microphone, Position, Speaker, ToneSpec
from repro.core import TdoaLocalizer
from repro.fans import Server

STATIONS = {
    "nw": Position(0.0, 10.0, 0.0),
    "ne": Position(12.0, 10.0, 0.0),
    "s": Position(6.0, -2.0, 0.0),
    "w": Position(-2.0, 0.0, 0.0),
}


def build_array(seed=1):
    return {
        name: Microphone(position, seed=seed + index)
        for index, (name, position) in enumerate(sorted(STATIONS.items()))
    }


def test_xext11_position_sweep(run_once):
    def run():
        errors = []
        for x, y in ((6.0, 3.0), (1.0, 8.0), (10.0, 0.5), (4.0, 6.0),
                     (11.0, 9.0)):
            true_position = Position(x, y, 0.0)
            channel = AcousticChannel()
            Speaker(true_position).play(channel, 1.0,
                                        ToneSpec(2500, 0.5, 70.0))
            result = TdoaLocalizer(build_array()).locate(channel, 1.0, 1.6)
            errors.append(((x, y), result.position.distance_to(true_position)))
        return errors

    errors = run_once(run)
    rows = [("true position", "error (m)")]
    for position, error in errors:
        rows.append((position, f"{error:.2f}"))
    report("XEXT11: localization error across source positions "
           "(12 x 12 m room, 4 stations)", rows)
    assert all(error < 0.5 for _position, error in errors)


def test_xext11_beeping_server_despite_roaring_neighbour(run_once):
    def run():
        channel = AcousticChannel()
        bystander = Server("healthy")
        bystander.position = Position(2.0, 8.0, 0.0)
        bystander.attach_to_channel(channel, 3.0)
        culprit = Position(9.0, 2.0, 0.0)
        Speaker(culprit).play(channel, 1.0, ToneSpec(4000, 0.4, 75.0))
        result = TdoaLocalizer(build_array()).locate(
            channel, 1.0, 1.5, band=(3700.0, 4300.0)
        )
        return culprit, result

    culprit, result = run_once(run)
    report("XEXT11: beeping server next to a roaring neighbour", [
        ("true rack", f"({culprit.x:.0f}, {culprit.y:.0f})"),
        ("estimated", f"({result.position.x:.1f}, {result.position.y:.1f})"),
        ("error", f"{result.position.distance_to(culprit):.2f} m"),
        ("stations gated out", result.excluded),
    ])
    assert result.position.distance_to(culprit) < 1.5
    assert "nw" in result.excluded
