"""XCAP — frequency capacity and detector ablations.

* §5's "~1000 distinct frequencies" capacity claim, as plan math and as
  a live concurrency sweep.
* §3's 20 Hz separability floor, swept to find where it breaks.
* DESIGN.md §5's backend ablation: FFT vs Goertzel accuracy and cost.
"""

from conftest import report

from repro.core import FrequencyPlan
from repro.experiments import (
    backend_ablation,
    concurrency_sweep,
    guard_spacing_sweep,
    multipath_sweep,
)


def test_xcap_thousand_frequency_claim(run_once):
    plan = run_once(FrequencyPlan, low_hz=20.0, high_hz=20_000.0,
                    guard_hz=20.0)
    report("XCAP: audible-band capacity at 20 Hz guard (paper: ~1000)", [
        ("capacity", plan.capacity),
    ])
    assert 950 <= plan.capacity <= 1050


def test_xcap_concurrent_tone_sweep(run_once):
    points = run_once(concurrency_sweep)
    rows = [("simultaneous tones", "recall", "precision")]
    for point in points:
        rows.append((point.num_tones, f"{point.recall:.2f}",
                     f"{point.precision:.2f}"))
    report("XCAP: detection vs number of concurrent tones", rows)
    for point in points:
        assert point.recall >= 0.95
        assert point.precision >= 0.95


def test_xcap_guard_spacing_floor(run_once):
    points = run_once(guard_spacing_sweep)
    rows = [("guard (Hz)", "both tones resolved")]
    for point in points:
        rows.append((point.guard_hz, point.both_detected))
    report("XCAP: separability vs guard spacing (paper floor: ~20 Hz)",
           rows)
    by_guard = {point.guard_hz: point.both_detected for point in points}
    # The paper's 20 Hz spacing resolves; 5 Hz (below one FFT bin) fails.
    assert by_guard[20.0]
    assert not by_guard[5.0]


def test_xcap_multipath_robustness(run_once):
    """Room reflections (echo taps) do not degrade detection: echoes
    are same-frequency copies, so they reinforce the watched bins
    instead of creating phantoms."""
    points = run_once(multipath_sweep)
    rows = [("echo loss (dB)", "recall", "phantom detections")]
    for point in points:
        rows.append((point.echo_loss_db, f"{point.recall:.2f}",
                     point.false_positives))
    report("XCAP: detection under multipath (two early reflections)", rows)
    for point in points:
        assert point.recall == 1.0
        assert point.false_positives == 0


def test_xcap_backend_ablation(run_once):
    comparisons = run_once(backend_ablation)
    rows = [("watch size", "fft recall", "fft ms", "goertzel recall",
             "goertzel ms")]
    for comparison in comparisons:
        rows.append((
            comparison.watch_size,
            f"{comparison.fft_recall:.2f}",
            f"{comparison.fft_ms_per_window:.2f}",
            f"{comparison.goertzel_recall:.2f}",
            f"{comparison.goertzel_ms_per_window:.2f}",
        ))
    report("XCAP: FFT vs Goertzel backend", rows)
    for comparison in comparisons:
        assert comparison.fft_recall == 1.0
        assert comparison.goertzel_recall == 1.0
    # The FFT cost is flat in watch size; the Goertzel bank is linear.
    assert comparisons[-1].goertzel_ms_per_window > (
        2 * comparisons[0].goertzel_ms_per_window
    )
