"""XEXT8 — the acoustic footprint: §3's operator-comfort concern,
quantified.

"Scaling an MDN application to even a medium size datacenter may result
in environments that are even more uncomfortable for operators."  How
loud IS Music-Defined Networking?  This benchmark measures the sound
exposure at an operator position two metres from the rack for (a) one
queue-monitoring app, (b) five concurrent chirping switches, and (c)
the change-only chirp optimization — showing where the discomfort
budget goes and how much protocol discipline buys back.
"""

from conftest import report

from repro.audio import ExposureMeter, Position
from repro.core.apps import BandToneMap, QueueChirper
from repro.experiments.rigs import SPEAKER_RING, build_testbed
from repro.net import OnOffSource

OPERATOR = Position(2.0, 2.0, 0.0)


def run_scenario(num_chirpers=1, always_chirp=True, horizon=10.0):
    testbed = build_testbed("single")
    port = testbed.topo.port_towards("s1", "h2")
    switch = testbed.topo.switches["s1"]
    chirpers = []
    for index in range(num_chirpers):
        allocation = testbed.plan.allocate(f"chirper{index}", 3)
        tones = BandToneMap.from_frequencies(allocation.frequencies)
        agent = (testbed.agents["s1"] if index == 0 else
                 testbed.extra_agent(f"aux{index}",
                                     SPEAKER_RING[index % len(SPEAKER_RING)]))
        chirpers.append(QueueChirper(
            testbed.sim, switch, port, agent, tones,
            always_chirp=always_chirp,
        ))
    burst = OnOffSource(testbed.topo.hosts["h1"], "10.0.0.2", 80,
                        rate_pps=500, on_duration=1.5, off_duration=30.0,
                        start=1.0)
    burst.launch()
    testbed.sim.run(horizon)
    meter = ExposureMeter(testbed.channel, OPERATOR, threshold_db=55.0)
    return meter.measure(0.0, horizon)


def test_xext8_exposure_scales_with_apps(run_once):
    def run():
        return {
            "1 chirper": run_scenario(1),
            "5 chirpers": run_scenario(5),
        }

    reports = run_once(run)
    rows = [("scenario", "Leq dB", "Lmax dB", "time > 55 dB")]
    for name, result in reports.items():
        rows.append((name, f"{result.leq_db:.1f}",
                     f"{result.l_max_db:.1f}",
                     f"{result.fraction_above:.0%}"))
    report("XEXT8: operator exposure 2 m from the rack", rows)
    single, five = reports["1 chirper"], reports["5 chirpers"]
    # More concurrent apps = louder room; five similar sources add
    # roughly 10*log10(5) ~= 7 dB.
    assert five.leq_db > single.leq_db + 4.0
    # Even the loud case stays below office-conversation levels at 2 m
    # — the paper's point is about *datacenter scale*, not one rack.
    assert five.leq_db < 70.0


def test_xext8_change_only_chirps_cut_exposure(run_once):
    """The always-chirp mode matches the paper; change-only chirping
    (our optimization knob) slashes the acoustic duty cycle in steady
    state."""
    def run():
        return {
            "always (paper)": run_scenario(1, always_chirp=True),
            "change-only": run_scenario(1, always_chirp=False),
        }

    reports = run_once(run)
    rows = [("mode", "Leq dB", "time > 55 dB")]
    for name, result in reports.items():
        rows.append((name, f"{result.leq_db:.1f}",
                     f"{result.fraction_above:.0%}"))
    report("XEXT8: chirp discipline vs exposure", rows)
    assert (reports["change-only"].leq_db
            < reports["always (paper)"].leq_db - 3.0)
