"""XEXT6 — closing the §6 congestion loop in-network.

"[Queue chirps] can be used to drive in-network flow or congestion
control decisions, without waiting for source reactions" — here the
controller hears the congestion tone and installs a token-bucket meter
at the switch; when the air reports sustained calm, the meter is
removed.  Also measures the acoustic message service (§2/§8 management
messaging) delivery.
"""

from conftest import report

from repro.core.apps import (
    BandToneMap,
    QueueChirper,
    RateControlApp,
    RateControlPolicy,
)
from repro.experiments.rigs import build_testbed
from repro.net import ConstantRateSource, Match


def run_rate_control(offered_pps=450.0, stop=6.0, horizon=16.0):
    testbed = build_testbed("single")
    switch = testbed.topo.switches["s1"]
    port = testbed.topo.port_towards("s1", "h2")
    tones = BandToneMap.from_frequencies(
        testbed.plan.allocate("s1", 3).frequencies
    )
    chirper = QueueChirper(testbed.sim, switch, port, testbed.agents["s1"],
                           tones)
    app = RateControlApp(
        testbed.controller, tones,
        RateControlPolicy("s1", Match(dst_ip="10.0.0.2"), port,
                          limit_pps=150.0),
    )
    testbed.controller.start()
    source = ConstantRateSource(testbed.topo.hosts["h1"], "10.0.0.2", 80,
                                rate_pps=offered_pps, stop=stop)
    source.launch()
    testbed.sim.run(horizon)
    return testbed, switch, chirper, app


def test_xext6_loop_bounds_the_queue(run_once):
    testbed, switch, chirper, app = run_once(run_rate_control)
    # While the meter is in place the queue drains; after the naive
    # release rule lets go under sustained load, it rebuilds and the
    # loop re-meters (oscillation — see the rate-control app tests).
    # Measure the drain over the first metered span.
    metered_until = (app.released_at[0] if app.released_at
                     else chirper.queue_series.times[-1])
    peak_after_meter = chirper.queue_series.window(
        app.installed_at[0] + 1.0, metered_until
    ).max()
    report("XEXT6: acoustic in-network rate control (450 pps into "
           "250 pps egress, limit 150 pps)", [
        ("meter installed at", f"{app.installed_at[0]:.1f} s"),
        ("meter released at",
         f"{app.released_at[0]:.1f} s" if app.released_at else "never"),
        ("queue peak before meter",
         int(chirper.queue_series.window(0.0, app.installed_at[0] + 0.31).max())),
        ("queue peak 1 s after meter", int(peak_after_meter)),
        ("packets policed", int(switch.packets_policed.total)),
        ("final queue", int(chirper.queue_series.final())),
    ])
    assert app.installed_at
    assert switch.packets_policed.total > 0
    assert peak_after_meter <= 75     # out of the congested band
    assert chirper.queue_series.final() == 0
    assert not app.metered            # released after the load stopped


def test_xext6_reaction_time(run_once):
    """Install latency: one chirp period + listen window + control
    latency after the queue first crosses the high threshold."""
    _testbed, _switch, chirper, app = run_once(run_rate_control)
    crossing = next(
        time for time, length in zip(chirper.queue_series.times,
                                     chirper.queue_series.values)
        if length > 75
    )
    latency = app.installed_at[0] - crossing
    report("XEXT6: meter install latency", [
        ("queue crossed 75 pkts", f"{crossing:.2f} s"),
        ("meter installed", f"{app.installed_at[0]:.2f} s"),
        ("latency", f"{latency:.3f} s"),
    ])
    assert latency < 0.5
