"""FIG5A/B — music-defined load balancing on the rhombus (Figure 5a
queue evolution, 5b chirp spectrogram).

Paper: ramping source over the single (top) path; switches chirp their
queue band every 300 ms; on the congestion tone the controller installs
a Flow-MOD splitting traffic over both routes (in the paper's run at
t = 3.7 s).  Shape to hold: queue builds past the 75-packet threshold,
the split lands within one chirp period + control latency, the queue
drains, and traffic flows on both paths afterwards.
"""

from conftest import report

from repro.experiments import load_balancing_experiment


def test_fig5a_queue_builds_then_drains(run_once):
    result = run_once(load_balancing_experiment)
    rows = [("t (s)", "queue (pkts)")]
    for time, length in zip(result.queue_series.times[::2],
                            result.queue_series.values[::2]):
        rows.append((f"{time:.1f}", int(length)))
    rows.append(("split at", f"{result.split_time:.2f} s"
                 if result.split_time else "never"))
    report("Fig 5a: s_in->s_top queue evolution (paper split at 3.7 s)",
           rows)

    assert result.rebalanced
    assert result.peak_queue_before_split > 75
    assert result.final_queue < 25
    assert result.bottom_path_packets > 0


def test_fig5a_reaction_latency_bounded(run_once):
    """The split must land within one chirp period (300 ms) plus one
    listen window plus control latency of the queue first crossing the
    high threshold."""
    result = run_once(load_balancing_experiment)
    crossing = next(
        time for time, length in zip(result.queue_series.times,
                                     result.queue_series.values)
        if length > 75
    )
    latency = result.split_time - crossing
    report("Fig 5a: reaction latency", [
        ("threshold crossed", f"{crossing:.2f} s"),
        ("split installed", f"{result.split_time:.2f} s"),
        ("latency", f"{latency:.3f} s"),
    ])
    assert latency < 0.5


def test_fig5b_congestion_tone_in_spectrogram(run_once):
    """The spectrogram around the split contains the high-band chirp
    (the vertical-line moment of Figure 5b)."""
    result = run_once(load_balancing_experiment)
    high_band_tones = [entry for entry in result.tone_log
                       if entry[2] == "high"]
    report("Fig 5b: band tones heard", [
        ("total tones", len(result.tone_log)),
        ("high-band tones", len(high_band_tones)),
        ("first high tone", f"{high_band_tones[0][0]:.2f} s"
         if high_band_tones else "none"),
    ])
    assert high_band_tones
    assert high_band_tones[0][0] <= result.split_time
